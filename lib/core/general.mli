(** Product-form evaluation for {e arbitrary} state-dependent arrival
    rates.

    The reversibility argument of paper Section 2 does not actually need
    the BPP (affine) form of [lambda_r(k)] — any non-negative
    state-dependent rate yields the product form
    [pi(k) ∝ Psi(k) prod_r prod_l lambda_r(l-1)/(l mu_r)].  This module
    evaluates that general model by log-domain enumeration.  Algorithms 1
    and 2 specifically exploit affinity and stay in {!Convolution} /
    {!Mva}; use this for non-BPP rates (e.g. MMPP-like staircases,
    truncated overflow streams, or the shifted-[beta] variant used in the
    Table 2 forensics of EXPERIMENTS.md). *)

type spec = {
  name : string;
  bandwidth : int; (* a_r *)
  arrival_rate : int -> float;
      (* per-pair lambda_r(k), k = current class-r connections; must be
         >= 0 and is treated as 0 once it first returns a non-positive
         value *)
  service_rate : float; (* mu_r *)
}

type result = {
  non_blocking : float array;
  concurrency : float array;
  log_normalization : float; (* log G(N1, N2) *)
}

val max_states : int
(** Safety bound on the enumerated state count (2_000_000). *)

val solve : inputs:int -> outputs:int -> classes:spec list -> result
(** Direct evaluation over [Gamma(N)].
    @raise Invalid_argument on malformed specs.
    @raise Failure if the state space exceeds {!max_states}. *)

val distribution :
  inputs:int -> outputs:int -> classes:spec list ->
  Crossbar_markov.State_space.t * float array
(** The explicit stationary distribution over [Gamma(N)]. *)

val load_distribution :
  inputs:int -> outputs:int -> classes:spec list -> float array
(** [P(k . A = j)] for [j = 0 .. min(inputs, outputs)]: the stationary
    distribution of the number of busy input (= output) ports — the
    occupancy histogram behind the scalar measures. *)

val log_g : inputs:int -> outputs:int -> classes:spec list -> float
(** [log G(n1, n2)] for the given dimensions (states still enumerated up
    to [min] of the given dimensions). *)

val log_state_weight :
  inputs:int -> outputs:int -> classes:spec list -> int array -> float
(** [log (Psi(k) prod_r Phi_r(k_r))] of one state ([neg_infinity] when
    infeasible) — the unnormalised stationary weight. *)

val of_model : Model.t -> spec list
(** The BPP special case: specs whose [arrival_rate] is the model's
    per-pair [lambda_r(k) = alpha_r + beta_r k]. *)
