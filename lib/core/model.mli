(** The asynchronous [N1 x N2] multi-rate crossbar model (paper Section 2).

    A model couples switch dimensions with a set of {!Traffic} classes and
    precomputes the {e per-pair} BPP parameters
    [alpha_r = alpha~_r / C(N2, a_r)] (idem [beta_r], [rho_r]) that appear
    in the product-form solution.  All solvers ({!Brute}, {!Convolution},
    {!Mva}) take a model and agree on these conventions. *)

type t

val create : inputs:int -> outputs:int -> classes:Traffic.t list -> t
(** [create ~inputs ~outputs ~classes] validates and freezes a model.

    @raise Invalid_argument if [inputs < 1] or [outputs < 1]; if two
    classes share a name; if a class's bandwidth exceeds
    [min (inputs, outputs)] (it could never connect); or if a Bernoulli
    class ([beta < 0]) can reach a
    negative arrival rate inside the feasible state space without
    [alpha/(-beta)] being an integer (which would make the product-form
    weights negative — see DESIGN.md). *)

val square : size:int -> classes:Traffic.t list -> t
(** [square ~size ~classes = create ~inputs:size ~outputs:size ~classes]. *)

val inputs : t -> int
val outputs : t -> int

val capacity : t -> int
(** [min (inputs, outputs)] — the maximum number of simultaneously busy
    input (equivalently output) ports. *)

val classes : t -> Traffic.t array
(** The traffic classes, in declaration order (index = class index). *)

val num_classes : t -> int

val bandwidth : t -> int -> int
(** [a_r] for class index [r]. *)

val bandwidths : t -> int array

val service_rate : t -> int -> float

val alpha : t -> int -> float
(** Per-pair [alpha_r = alpha~_r / C(N2, a_r)]. *)

val beta : t -> int -> float
(** Per-pair [beta_r]. *)

val rho : t -> int -> float
(** Per-pair offered load [rho_r = alpha_r / mu_r]. *)

val beta_over_mu : t -> int -> float
(** [beta_r / mu_r], the bursty-load coordinate of the revenue gradient. *)

val arrival_rate : t -> class_index:int -> concurrent:int -> float
(** Per-pair state-dependent arrival rate
    [lambda_r(k) = alpha_r + beta_r * k], clamped at 0 (a Bernoulli class
    with all sources busy generates no arrivals). *)

val max_concurrent : t -> int -> int
(** Largest feasible [k_r]: [capacity / a_r], further capped at the source
    count for Bernoulli classes. *)

val is_poisson : t -> int -> bool
(** Whether class [r] belongs to the paper's group [R1] ([beta_r = 0]). *)

val map_class : t -> int -> (Traffic.t -> Traffic.t) -> t
(** [map_class t r f] rebuilds the model with class [r] replaced by
    [f (classes t).(r)] — used for numeric gradients and load sweeps. *)

val class_delta : t -> t -> int list option
(** [class_delta a b] is [Some changed] when the two models share switch
    dimensions and class count, with [changed] the sorted list of class
    indices on which they differ ({!Traffic.equal}, i.e. exact bit-level
    comparison of rates) — [Some []] when they are structurally
    identical.  [None] when the switch shapes or class counts differ,
    i.e. when no factor state can be shared at all.  The sweep engine
    uses this to route {e any} compatible pair of points to
    {!Convolution.solve_delta}. *)

val single_class_delta : t -> t -> int option
(** [single_class_delta a b] is [Some r] when {!class_delta} reports
    exactly the one changed class [r]; [None] otherwise — including when
    the models are structurally identical.  Kept for callers that only
    tolerate one moving class, e.g. {!Convolution.solve_incremental}
    validation. *)

val state_space : t -> Crossbar_markov.State_space.t
(** The paper's [Gamma(N)]: all occupancy vectors with
    [k . A <= capacity].  Built lazily and cached. *)

val pp : Format.formatter -> t -> unit
