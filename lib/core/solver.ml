type algorithm = Brute_force | Convolution | Mean_value

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "brute" | "brute-force" | "enumeration" -> Ok Brute_force
  | "convolution" | "algorithm1" | "alg1" -> Ok Convolution
  | "mva" | "mean-value" | "algorithm2" | "alg2" -> Ok Mean_value
  | _ -> Error (Printf.sprintf "unknown algorithm %S" s)

let algorithm_to_string = function
  | Brute_force -> "brute-force"
  | Convolution -> "convolution"
  | Mean_value -> "mean-value"

let recommended model =
  if Model.capacity model <= 32 then Convolution else Mean_value

type solution = {
  algorithm : algorithm;
  measures : Measures.t;
  log_normalization : float;
  lattice_cells : int;
  rescales : int;
  tree_combines : int;
  banded_combines : int;
}

let solution_of_convolution solved =
  let model = Convolution.model solved in
  {
    algorithm = Convolution;
    measures = Convolution.measures solved;
    log_normalization = Convolution.log_normalization solved;
    lattice_cells = (Model.inputs model + 1) * (Model.outputs model + 1);
    rescales = Convolution.rescale_count solved;
    tree_combines = Convolution.combine_count solved;
    banded_combines = Convolution.banded_combine_count solved;
  }

let solve_full ?algorithm model =
  let algorithm =
    match algorithm with Some a -> a | None -> recommended model
  in
  let inputs = Model.inputs model and outputs = Model.outputs model in
  let lattice_cells = (inputs + 1) * (outputs + 1) in
  match algorithm with
  | Brute_force ->
      {
        algorithm;
        measures = Brute.solve model;
        log_normalization = Brute.log_g model ~inputs ~outputs;
        lattice_cells = 0;
        rescales = 0;
        tree_combines = 0;
        banded_combines = 0;
      }
  | Convolution -> solution_of_convolution (Convolution.solve model)
  | Mean_value ->
      let solved = Mva.solve model in
      {
        algorithm;
        measures = Mva.measures solved;
        log_normalization = Mva.log_normalization solved;
        lattice_cells;
        rescales = 0;
        tree_combines = 0;
        banded_combines = 0;
      }

let solve ?algorithm model =
  let algorithm =
    match algorithm with Some a -> a | None -> recommended model
  in
  match algorithm with
  | Brute_force -> Brute.solve model
  | Convolution -> Convolution.measures (Convolution.solve model)
  | Mean_value -> Mva.measures (Mva.solve model)

let log_normalization ?algorithm model =
  let algorithm =
    match algorithm with Some a -> a | None -> recommended model
  in
  match algorithm with
  | Brute_force ->
      Brute.log_g model ~inputs:(Model.inputs model)
        ~outputs:(Model.outputs model)
  | Convolution -> Convolution.log_normalization (Convolution.solve model)
  | Mean_value -> Mva.log_normalization (Mva.solve model)
