(** Performance measures of a solved crossbar model (paper Section 3).

    All three solvers (brute enumeration, Algorithm 1, Algorithm 2) return
    this record so they can be cross-checked and interchanged. *)

type per_class = {
  name : string;
  bandwidth : int; (* a_r *)
  offered_load : float; (* aggregate rho~_r = alpha~_r / mu_r *)
  non_blocking : float;
      (* B_r = G(N - a_r I)/G(N): probability a specific set of a_r inputs
         and a_r outputs is entirely idle (paper eq. 4) *)
  blocking : float; (* 1 - B_r: what the paper's figures plot *)
  concurrency : float; (* E_r = sum_k k_r pi(k) *)
  throughput : float; (* accepted-connection completion rate, E_r * mu_r *)
}

type t = {
  per_class : per_class array;
  busy_ports : float; (* E[k . A] — mean busy inputs (= busy outputs) *)
  input_utilization : float; (* E[k . A] / N1 *)
  output_utilization : float; (* E[k . A] / N2 *)
}

val class_named : t -> string -> per_class
(** @raise Not_found if no class has that name. *)

val total_throughput : t -> float
(** Unweighted system throughput [sum_r E_r mu_r]. *)

val revenue : t -> weights:float array -> float
(** Weighted throughput [W(N) = sum_r w_r E_r] (paper Section 4).
    @raise Invalid_argument on weight-count mismatch. *)

val of_concurrencies :
  model:Model.t -> non_blocking:float array -> concurrency:float array -> t
(** Assembles the record from per-class [B_r] and [E_r] (used by every
    solver). *)

type distribution = {
  class_index : int;
  name : string;
  bandwidth : int; (* a_r *)
  probabilities : float array;
      (* probabilities.(m) = p(k_r = m), m = 0 .. capacity / a_r *)
  mean : float; (* E[k_r] = sum_m m p(k_r = m) *)
}
(** The full marginal occupancy distribution of one class — what
    {!Convolution.per_class_distributions} batches for every class from
    a single leave-one-out sweep. *)

val distribution_of_weights :
  model:Model.t -> class_index:int -> weights:float array -> distribution
(** Normalises raw (unscaled) marginal weights [w.(m) ∝ p(k_r = m)] into
    a {!distribution}; any common scale factor cancels.
    @raise Invalid_argument on an out-of-range class index, an empty
    vector, or a negative/non-finite weight.
    @raise Failure if the weights sum to zero (dynamic rescaling flushed
    the marginal). *)

val pp : Format.formatter -> t -> unit
