module Special = Crossbar_numerics.Special
module Logspace = Crossbar_numerics.Logspace

(* log Phi_r(m) for m = 0 .. capacity / a_r. *)
let phi_series model r =
  let capacity = Model.capacity model in
  let a = Model.bandwidth model r in
  let mu = Model.service_rate model r in
  let max_m = capacity / a in
  let series = Array.make (max_m + 1) neg_infinity in
  series.(0) <- 0.;
  let exhausted = ref false in
  for m = 1 to max_m do
    if not !exhausted then begin
      let rate = Model.arrival_rate model ~class_index:r ~concurrent:(m - 1) in
      if rate > 0. then
        series.(m) <-
          series.(m - 1)
          +. Logspace.log_checked rate
          -. Logspace.log_checked (float_of_int m *. mu)
      else exhausted := true
    end
  done;
  series

(* Knapsack convolution: log S.(j) = log sum over class counts with total
   load j of the product of Phi series, optionally excluding one class. *)
let load_series ?exclude model =
  let capacity = Model.capacity model in
  let accumulated = Array.make (capacity + 1) neg_infinity in
  accumulated.(0) <- 0.;
  for r = 0 to Model.num_classes model - 1 do
    if exclude <> Some r then begin
      let a = Model.bandwidth model r in
      let series = phi_series model r in
      let updated = Array.make (capacity + 1) neg_infinity in
      for j = 0 to capacity do
        let terms = ref [] in
        let m = ref 0 in
        while (!m * a <= j) && !m < Array.length series do
          let remaining = j - (!m * a) in
          let combined = series.(!m) +. accumulated.(remaining) in
          if combined > neg_infinity then
            terms := Logspace.of_log combined :: !terms;
          incr m
        done;
        updated.(j) <- Logspace.to_log (Logspace.sum (Array.of_list !terms))
      done;
      Array.blit updated 0 accumulated 0 (capacity + 1)
    end
  done;
  accumulated

let normalise log_weights =
  let total = Logspace.sum (Array.map Logspace.of_log log_weights) in
  Array.map
    (fun lw -> Logspace.ratio (Logspace.of_log lw) total)
    log_weights

let load_distribution model =
  let n1 = Model.inputs model and n2 = Model.outputs model in
  let series = load_series model in
  normalise
    (Array.mapi
       (fun j s ->
         Special.log_permutations n1 j +. Special.log_permutations n2 j +. s)
       series)

let class_distribution model ~class_index =
  if class_index < 0 || class_index >= Model.num_classes model then
    invalid_arg "Occupancy.class_distribution: class index";
  let n1 = Model.inputs model and n2 = Model.outputs model in
  let capacity = Model.capacity model in
  let a = Model.bandwidth model class_index in
  let own = phi_series model class_index in
  let others = load_series ~exclude:class_index model in
  (* P(k_r = m) ∝ Phi_r(m) * sum_j Psi(m a + j) S^(others)_j. *)
  let log_weights =
    Array.mapi
      (fun m phi ->
        if Logspace.is_zero (Logspace.of_log phi) then neg_infinity
        else begin
          let terms = ref [] in
          for j = 0 to capacity - (m * a) do
            let load = (m * a) + j in
            let combined =
              Special.log_permutations n1 load
              +. Special.log_permutations n2 load
              +. others.(j)
            in
            if combined > neg_infinity then
              terms := Logspace.of_log combined :: !terms
          done;
          phi +. Logspace.to_log (Logspace.sum (Array.of_list !terms))
        end)
      own
  in
  normalise log_weights

let mean_load model =
  let distribution = load_distribution model in
  let mean = ref 0. in
  Array.iteri (fun j p -> mean := !mean +. (float_of_int j *. p)) distribution;
  !mean

let load_quantile model ~probability =
  if not (probability > 0. && probability <= 1.) then
    invalid_arg "Occupancy.load_quantile: probability outside (0, 1]";
  let distribution = load_distribution model in
  let cumulative = ref 0. and result = ref (Array.length distribution - 1) in
  (try
     Array.iteri
       (fun j p ->
         cumulative := !cumulative +. p;
         if !cumulative >= probability then begin
           result := j;
           raise Exit
         end)
       distribution
   with Exit -> ());
  !result
