(* Thin adapter: the enumeration engine lives in General; this module
   binds it to the BPP Model conventions. *)

let max_states = General.max_states

let log_weight model ~inputs ~outputs k =
  General.log_state_weight ~inputs ~outputs ~classes:(General.of_model model) k

let log_g model ~inputs ~outputs =
  General.log_g ~inputs ~outputs ~classes:(General.of_model model)

let distribution model =
  General.distribution ~inputs:(Model.inputs model)
    ~outputs:(Model.outputs model) ~classes:(General.of_model model)

let solve model =
  let result =
    General.solve ~inputs:(Model.inputs model) ~outputs:(Model.outputs model)
      ~classes:(General.of_model model)
  in
  Measures.of_concurrencies ~model ~non_blocking:result.General.non_blocking
    ~concurrency:result.General.concurrency
