type per_class = {
  name : string;
  bandwidth : int;
  offered_load : float;
  non_blocking : float;
  blocking : float;
  concurrency : float;
  throughput : float;
}

type t = {
  per_class : per_class array;
  busy_ports : float;
  input_utilization : float;
  output_utilization : float;
}

let class_named t name =
  match Array.find_opt (fun c -> String.equal c.name name) t.per_class with
  | Some c -> c
  | None -> raise Not_found

let total_throughput t =
  Array.fold_left (fun acc c -> acc +. c.throughput) 0. t.per_class

let revenue t ~weights =
  if Array.length weights <> Array.length t.per_class then
    invalid_arg "Measures.revenue: weight count mismatch";
  let total = ref 0. in
  Array.iteri
    (fun r c -> total := !total +. (weights.(r) *. c.concurrency))
    t.per_class;
  !total

let of_concurrencies ~model ~non_blocking ~concurrency =
  let classes = Model.classes model in
  if
    Array.length non_blocking <> Array.length classes
    || Array.length concurrency <> Array.length classes
  then invalid_arg "Measures.of_concurrencies: array length mismatch";
  let per_class =
    Array.mapi
      (fun r (c : Traffic.t) ->
        {
          name = c.Traffic.name;
          bandwidth = c.Traffic.bandwidth;
          offered_load = Traffic.offered_load c;
          non_blocking = non_blocking.(r);
          blocking = 1. -. non_blocking.(r);
          concurrency = concurrency.(r);
          throughput = concurrency.(r) *. c.Traffic.service_rate;
        })
      classes
  in
  let busy_ports =
    Array.fold_left
      (fun acc c -> acc +. (float_of_int c.bandwidth *. c.concurrency))
      0. per_class
  in
  {
    per_class;
    busy_ports;
    input_utilization = busy_ports /. float_of_int (Model.inputs model);
    output_utilization = busy_ports /. float_of_int (Model.outputs model);
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun c ->
      Format.fprintf ppf
        "%-12s a=%d rho~=%-10.6g blocking=%-12.6g E=%-12.6g X=%-12.6g@," c.name
        c.bandwidth c.offered_load c.blocking c.concurrency c.throughput)
    t.per_class;
  Format.fprintf ppf
    "busy ports %.6g (input util %.4g%%, output util %.4g%%)@]" t.busy_ports
    (100. *. t.input_utilization)
    (100. *. t.output_utilization)

type distribution = {
  class_index : int;
  name : string;
  bandwidth : int;
  probabilities : float array;
  mean : float;
}

let distribution_of_weights ~model ~class_index ~weights =
  let classes = Model.classes model in
  if class_index < 0 || class_index >= Array.length classes then
    invalid_arg "Measures.distribution_of_weights: class index out of range";
  if Array.length weights = 0 then
    invalid_arg "Measures.distribution_of_weights: empty weight vector";
  Array.iter
    (fun w ->
      if not (Float.is_finite w) || w < 0. then
        invalid_arg
          "Measures.distribution_of_weights: weights must be finite and \
           non-negative")
    weights;
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then
    failwith
      "Measures.distribution_of_weights: the marginal's weights sum to zero \
       (dynamic rescaling flushed every term); solve a smaller model or use \
       Occupancy.class_distribution";
  let probabilities = Array.map (fun w -> w /. total) weights in
  let mean = ref 0. in
  Array.iteri
    (fun m p -> mean := !mean +. (float_of_int m *. p))
    probabilities;
  let c = classes.(class_index) in
  {
    class_index;
    name = c.Traffic.name;
    bandwidth = c.Traffic.bandwidth;
    probabilities;
    mean = !mean;
  }
