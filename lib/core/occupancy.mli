(** Exact occupancy distributions, scalable to large switches.

    The scalar measures (Section 3) summarise the stationary law; this
    module computes the law itself.  The trick: the state weight factors
    as [Psi(k) * prod Phi_r(k_r)] where [Psi] depends on [k] only through
    the load [j = k . A], so

    [P(k . A = j) ∝ P(N1,j) P(N2,j) * S_j],

    with [S_j = sum_(k.A = j) prod_r Phi_r(k_r)] a knapsack convolution of
    the per-class weight series — computable in
    [O(R * capacity^2 / min a_r)] time and log space, with no state
    enumeration.  Cross-validated against {!General.load_distribution}. *)

val load_distribution : Model.t -> float array
(** [P(k . A = j)] for [j = 0 .. capacity]: the stationary law of the
    number of busy input (= output) ports. *)

val class_distribution : Model.t -> class_index:int -> float array
(** [P(k_r = m)] for [m = 0 .. capacity / a_r]: the stationary law of one
    class's concurrency. *)

val load_quantile : Model.t -> probability:float -> int
(** Smallest [j] with [P(k . A <= j) >= probability] — e.g. the busy-port
    level exceeded only 1% of the time.
    @raise Invalid_argument if [probability] is outside (0, 1]. *)

val mean_load : Model.t -> float
(** [E(k . A)] from the distribution (equals
    [Measures.busy_ports]; used as a consistency check). *)
