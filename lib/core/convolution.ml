module Special = Crossbar_numerics.Special
module Logspace = Crossbar_numerics.Logspace
module Prob = Crossbar_numerics.Prob

type t = {
  model : Model.t;
  stored : float array array; (* G(n1,n2) * exp log_omega *)
  log_omega : float;
  rescales : int;
  measures : Measures.t;
}

(* Values above this trigger an adaptive rescale of the whole lattice. *)
let rescale_threshold = 1e250
let rescale_factor = 0x1.0p-830 (* 2^-830 ~ 1.4e-250 *)

let get lattice n1 n2 = if n1 < 0 || n2 < 0 then 0. else lattice.(n1).(n2)

(* Unified concurrency chain: walks the class-r diagonal from the deepest
   feasible point up to (N1, N2), applying
   E_r(p) = P(n1,a) P(n2,a) B_r(p) (rho_r + (beta_r/mu_r) E_r(p - a I)).
   For Poisson classes the recursion degenerates to
   E_r = rho_r P(N1,a) P(N2,a) B_r. *)
let concurrency_of_lattice model stored r =
  let a = Model.bandwidth model r in
  let rho = Model.rho model r in
  let b_over_mu = Model.beta_over_mu model r in
  let n1 = Model.inputs model and n2 = Model.outputs model in
  let depth = min n1 n2 / a in
  let e = ref 0. in
  for m = depth downto 0 do
    let p1 = n1 - (m * a) and p2 = n2 - (m * a) in
    let here = get stored p1 p2 and down = get stored (p1 - a) (p2 - a) in
    if here > 0. && Float.is_finite here && Float.is_finite down then begin
      let non_blocking = down /. here in
      e :=
        Special.permutations p1 a *. Special.permutations p2 a
        *. non_blocking
        *. (rho +. (b_over_mu *. !e))
    end
    else
      (* A rescale flushed this deep entry; its contribution to the chain
         is damped by (beta/mu)^m and is negligible at this depth. *)
      e := 0.
  done;
  !e

let solve model =
  let n1_max = Model.inputs model and n2_max = Model.outputs model in
  let num_classes = Model.num_classes model in
  let stored = Array.make_matrix (n1_max + 1) (n2_max + 1) 0. in
  let bursty =
    (* Class indices of the paper's group R2 (beta <> 0). *)
    List.filter
      (fun r -> not (Model.is_poisson model r))
      (List.init num_classes Fun.id)
  in
  let v = List.map (fun r -> (r, Array.make_matrix (n1_max + 1) (n2_max + 1) 0.)) bursty in
  let log_omega = ref 0. and rescales = ref 0 in
  let rescale_all () =
    incr rescales;
    log_omega := !log_omega +. Logspace.log_checked rescale_factor;
    let scale lattice =
      Array.iter
        (fun row -> Array.iteri (fun j x -> row.(j) <- x *. rescale_factor) row)
        lattice
    in
    scale stored;
    List.iter (fun (_, lattice) -> scale lattice) v
  in
  for n1 = 0 to n1_max do
    for n2 = 0 to n2_max do
      (* V(p) first: it only references the diagonal predecessor. *)
      List.iter
        (fun (r, v_lattice) ->
          let a = Model.bandwidth model r in
          let scale =
            Special.permutations n1 a *. Special.permutations n2 a
          in
          if scale > 0. then
            v_lattice.(n1).(n2) <-
              scale
              *. (get stored (n1 - a) (n2 - a)
                 +. (Model.beta_over_mu model r *. get v_lattice (n1 - a) (n2 - a))
                 ))
        v;
      let value =
        if n1 = 0 && n2 = 0 then 1.
        else if n1 = 0 then get stored 0 (n2 - 1) (* all class terms vanish *)
        else begin
          (* Direction i = 1 of the paper's recurrence, in scaled form:
             stored(p) = stored(n1-1,n2)
                       + [ sum_{R1} a r rho_r P(n1,a) P(n2,a) stored(p-aI)
                         + sum_{R2} a_r rho_r V~(p) ] / n1. *)
          let class_terms = ref 0. in
          for r = 0 to num_classes - 1 do
            let a = Model.bandwidth model r in
            let rho = Model.rho model r in
            if Model.is_poisson model r then begin
              let scale =
                Special.permutations n1 a *. Special.permutations n2 a
              in
              class_terms :=
                !class_terms
                +. (float_of_int a *. rho *. scale *. get stored (n1 - a) (n2 - a))
            end
            else begin
              let v_lattice = List.assoc r v in
              class_terms :=
                !class_terms +. (float_of_int a *. rho *. v_lattice.(n1).(n2))
            end
          done;
          get stored (n1 - 1) n2 +. (!class_terms /. float_of_int n1)
        end
      in
      stored.(n1).(n2) <- value;
      if not (Float.is_finite value) then
        failwith
          "Convolution.solve: overflow within a single recurrence step; \
           use Mva.solve for this parameter regime";
      let v_magnitude =
        List.fold_left
          (fun acc (_, lattice) -> Float.max acc (Float.abs lattice.(n1).(n2)))
          0. v
      in
      if Float.max value v_magnitude > rescale_threshold then rescale_all ()
    done
  done;
  let non_blocking =
    Array.init num_classes (fun r ->
        let a = Model.bandwidth model r in
        if n1_max < a || n2_max < a then 0.
        else get stored (n1_max - a) (n2_max - a) /. get stored n1_max n2_max)
  in
  let concurrency =
    Array.init num_classes (fun r -> concurrency_of_lattice model stored r)
  in
  let measures = Measures.of_concurrencies ~model ~non_blocking ~concurrency in
  { model; stored; log_omega = !log_omega; rescales = !rescales; measures }

let model t = t.model
let measures t = t.measures

let log_g t ~inputs ~outputs =
  if
    inputs < 0 || outputs < 0
    || inputs > Model.inputs t.model
    || outputs > Model.outputs t.model
  then invalid_arg "Convolution.log_g: outside lattice";
  let stored = t.stored.(inputs).(outputs) in
  (* G(n1, n2) >= 1 for every feasible lattice point (the empty state
     always contributes), so a stored zero can only mean the entry was
     flushed by dynamic rescaling: it sits so many orders of magnitude
     below the corner that [stored * omega] underflowed.  Propagating
     [log 0. = -inf] here silently corrupts downstream blocking and
     revenue arithmetic, so refuse instead. *)
  if Prob.is_zero stored then
    failwith
      (Printf.sprintf
         "Convolution.log_g: lattice entry (%d, %d) was flushed to zero by \
          %d dynamic rescale(s); it lies too far below G(%d, %d) to \
          represent.  Solve a model of that size directly, or use \
          Mva.log_normalization"
         inputs outputs t.rescales (Model.inputs t.model)
         (Model.outputs t.model));
  Logspace.log_checked stored -. t.log_omega

let log_normalization t =
  log_g t ~inputs:(Model.inputs t.model) ~outputs:(Model.outputs t.model)

let rescale_count t = t.rescales
