module Special = Crossbar_numerics.Special
module Logspace = Crossbar_numerics.Logspace

(* The recurrence of Algorithm 1 factors per class (see DESIGN.md,
   "Class-factored convolution").  Writing Q(n1,n2) = G(n1,n2)/(n1! n2!)
   and matching coefficients in the paper's direction-1 recurrence shows

     G(n1, n2) = sum_u H(u) P(n1, u) P(n2, u),      P(n, u) = n!/(n-u)!

   where H = h_1 * ... * h_R is the 1-D convolution over used bandwidth
   [u] of per-class generating sequences h_r: for a class of bandwidth
   [a], per-pair intensity [rho] and burst ratio [theta = beta/mu],

     h_r(k a) = rho (rho + theta) ... (rho + (k-1) theta) / k!

   (Poisson classes are theta = 0, i.e. rho^k/k!; Bernoulli classes have
   theta < 0 and truncate at the source count).  We store each factor in
   corner-tilted form C_r(u) = h_r(u) P(N1,u) P(N2,u) so that every
   entry is bounded by the corner normalisation G(N1,N2) and the
   Section 6 dynamic rescale applies per partial product; tilted factors
   combine with the precomputed weights

     w_i(u, v) = P(N_i, u+v) / (P(N_i, u) P(N_i, v))
               = prod_{j<u} (N_i - j - v)/(N_i - j)   in (0, 1].

   The combine is associative up to rounding, so the factors can be
   multiplied in any tree shape; this module fixes one shape — a
   balanced binary tree with leaves C_1 .. C_R in class order — and
   makes it *the* solver.  Re-solving after changing any subset of the
   classes recombines only the root paths of the changed leaves
   (O(#changed log R) combines), and because the untouched nodes are
   shared physically and [combine] is deterministic, the result is
   bit-identical to a full rebuild.  The same tree yields every
   leave-one-out complement H_{-r} = prod_{s<>r} C_s in one top-down
   sweep of O(R) combines (the prefix x suffix identity; see
   docs/THEORY.md), which batches per-class marginal distributions and
   all R shadow costs out of a single solve.

   The combine itself runs as a cache-blocked kernel over Bigarray
   profiles with per-domain scratch arenas (zero major-heap allocation
   after warm-up) and, above a capacity threshold, splits its output
   into deterministic row bands computed by parallel domains — see
   DESIGN.md, "Combine kernels". *)

(* Per-domain scratch for the combine hot path: two chunk-scaled operand
   copies, the borrowed chunk counts of the current prechunk, and a free
   list of result-sized lattices recycled by [Factor_tree.update
   ~recycle] and the leave-one-out sweep.  One arena exists per (context,
   domain) pair — reached through a [Domain.DLS] key, so combines issued
   concurrently by a pool mapper never share scratch. *)
module Arena = struct
  type t = {
    left : Lattice.t;
    right : Lattice.t;
    mutable ka : int;
    mutable kb : int;
    mutable pool : Lattice.t list;
    mutable created : int;
    mutable reused : int;
  }

  let create ~cap =
    {
      left = Lattice.create ~capacity:cap ();
      right = Lattice.create ~capacity:cap ();
      ka = 0;
      kb = 0;
      pool = [];
      created = 0;
      reused = 0;
    }

  let created t = t.created
  let reused t = t.reused
  let pooled t = List.length t.pool

  (* Pops a recycled lattice — reset to the all-zero state, so callers
     cannot tell it from a fresh [create] — or creates one. *)
  let acquire t ~cap ~stride =
    match t.pool with
    | l :: rest ->
        t.pool <- rest;
        t.reused <- t.reused + 1;
        Lattice.reset ~stride l;
        l
    | [] ->
        t.created <- t.created + 1;
        Lattice.create ~stride ~capacity:cap ()

  (* Hands a lattice back for reuse.  Ownership is never inferred: a
     caller must guarantee no live structure still references [l]. *)
  let release t l = t.pool <- l :: t.pool
end

type context = {
  n1 : int;
  n2 : int;
  cap : int; (* min n1 n2: used bandwidth never exceeds either side *)
  w1 : Lattice.Grid.t;
  w2 : Lattice.Grid.t;
  tile : int; (* kernel block edge, in lattice entries *)
  band_threshold : int; (* cap >= this: parallelise a single combine *)
  band_domains : int; (* bands (domains) a banded combine splits into *)
  banded_total : int Atomic.t; (* banded combines through this context *)
  arenas : Arena.t Domain.DLS.key;
}

let weight_grid ~ports ~cap =
  let g = Lattice.Grid.create ~rows:(cap + 1) ~cols:(cap + 1) in
  for v = 0 to cap do
    Lattice.Grid.unsafe_set g 0 v 1.;
    for u = 1 to cap - v do
      let j = u - 1 in
      Lattice.Grid.unsafe_set g u v
        (Lattice.Grid.unsafe_get g j v
        *. (float_of_int (ports - j - v) /. float_of_int (ports - j)))
    done
  done;
  g

let default_tile = 64

(* Measured on the Band_pool dispatch path (see DESIGN.md, "Combine
   kernels"): a pool fan-out costs ~0.1 ms cold and far less once the
   completion spin hides the wake latency, against a dense kernel that
   crosses ~0.14 ms per combine near cap 256.  Banding starts paying
   around there, so the default sits at 256 — down from 1024, which was
   calibrated against Domain.spawn's ~0.8-4 ms round-trip. *)
let default_band_threshold = 256
let default_combine_threshold = default_band_threshold

let env_knob name =
  match Sys.getenv_opt name with
  | None -> None
  | Some text -> (
      (* Same contract as CROSSBAR_DOMAINS (see Domains.recommended): a
         malformed deploy-time override fails loudly. *)
      match int_of_string_opt (String.trim text) with
      | Some v when v >= 1 -> Some v
      | Some v ->
          invalid_arg
            (Printf.sprintf "Convolution.context_of: %s=%d must be >= 1" name
               v)
      | None ->
          invalid_arg
            (Printf.sprintf "Convolution.context_of: %s=%S is not an integer"
               name text))

let context_of ?tile ?combine_threshold ?band_domains ~inputs ~outputs () =
  let tile =
    match tile with
    | Some t when t >= 1 -> t
    | Some t ->
        invalid_arg
          (Printf.sprintf "Convolution.context_of: tile=%d must be >= 1" t)
    | None -> default_tile
  in
  let band_threshold =
    match combine_threshold with
    | Some t when t >= 1 -> t
    | Some t ->
        invalid_arg
          (Printf.sprintf
             "Convolution.context_of: combine_threshold=%d must be >= 1" t)
    | None -> (
        match env_knob "CROSSBAR_COMBINE_THRESHOLD" with
        | Some t -> t
        | None -> default_band_threshold)
  in
  let band_domains =
    match band_domains with
    | Some d when d >= 1 -> d
    | Some d ->
        invalid_arg
          (Printf.sprintf
             "Convolution.context_of: band_domains=%d must be >= 1" d)
    | None -> Domains.recommended ()
  in
  let cap = min inputs outputs in
  {
    n1 = inputs;
    n2 = outputs;
    cap;
    w1 = weight_grid ~ports:inputs ~cap;
    w2 = weight_grid ~ports:outputs ~cap;
    tile;
    band_threshold;
    band_domains;
    banded_total = Atomic.make 0;
    arenas = Domain.DLS.new_key (fun () -> Arena.create ~cap);
  }

let context_capacity ctx = ctx.cap
let arena ctx = Domain.DLS.get ctx.arenas
let banded_total ctx = Atomic.get ctx.banded_total

(* Process-wide bounded MRU cache of contexts, keyed on the switch
   dimensions and the resolved knobs.  A context owns two
   (cap+1)x(cap+1) weight grids (~150 MB at cap 3072) plus the
   per-domain arenas whose free lists hold every recycled node — so
   repeated default-knob builds of the same switch shape must share one
   context, both to avoid rebuilding the grids and so that lattices
   recycled when a serve cache evicts a tree actually reach the next
   build of that shape.  Env knobs are resolved per call, so changing
   CROSSBAR_COMBINE_THRESHOLD or CROSSBAR_DOMAINS yields a distinct
   key (and a fresh context), exactly as before. *)
let shared_context_limit = 8

let shared_context_lock = Mutex.create ()

let shared_contexts : ((int * int * int * int * int) * context) list Atomic.t =
  Atomic.make []

let rec cache_take entries n =
  match entries with
  | [] -> []
  | _ when n <= 0 -> []
  | e :: rest -> e :: cache_take rest (n - 1)

let shared_context ~inputs ~outputs =
  Mutex.lock shared_context_lock;
  match
    let band_threshold =
      match env_knob "CROSSBAR_COMBINE_THRESHOLD" with
      | Some t -> t
      | None -> default_band_threshold
    in
    let band_domains = Domains.recommended () in
    let key = (inputs, outputs, default_tile, band_threshold, band_domains) in
    let entries = Atomic.get shared_contexts in
    match List.assoc_opt key entries with
    | Some ctx ->
        (* Move to front so the working set stays resident. *)
        Atomic.set shared_contexts
          ((key, ctx) :: List.filter (fun (k, _) -> k <> key) entries);
        ctx
    | None ->
        let ctx = context_of ~inputs ~outputs () in
        Atomic.set shared_contexts
          ((key, ctx) :: cache_take entries (shared_context_limit - 1));
        ctx
  with
  | ctx ->
      Mutex.unlock shared_context_lock;
      ctx
  | exception e ->
      Mutex.unlock shared_context_lock;
      raise e

let unit_profile cap =
  let l = Lattice.create ~capacity:cap () in
  Lattice.set l 0 1.;
  l

(* Tilted per-class sequence via the chain
     v_k = step_k (C(u - a) + theta v_{k-1}),   C(u) = rho v_k / k
   at u = k a, with step_k = P(N1-(k-1)a, a) P(N2-(k-1)a, a) carrying
   the corner tilt along so magnitudes track G rather than h alone.
   The profile comes from the current domain's arena, so a steady-state
   update loop rebuilds leaves into recycled storage. *)
let class_factor ctx model r =
  let a = Model.bandwidth model r in
  let rho = Model.rho model r in
  let theta = Model.beta_over_mu model r in
  let seq = Arena.acquire (Domain.DLS.get ctx.arenas) ~cap:ctx.cap ~stride:a in
  Lattice.set seq 0 1.;
  (* lint: alloc=v -- one chain cell per class factor, O(R) per solve *)
  let v = ref 0. in
  for k = 1 to ctx.cap / a do
    let u = k * a in
    let step =
      Special.permutations (ctx.n1 - ((k - 1) * a)) a
      *. Special.permutations (ctx.n2 - ((k - 1) * a)) a
    in
    v := step *. (Lattice.get seq (u - a) +. (theta *. !v));
    let value = rho *. !v /. float_of_int k in
    if not (Float.is_finite value && Float.is_finite !v) then
      failwith
        "Convolution.solve: overflow within a single recurrence step; \
         use Mva.solve for this parameter regime";
    Lattice.set seq u value;
    if Float.max (Float.abs value) (Float.abs !v) > Lattice.rescale_threshold
    then begin
      Lattice.rescale seq;
      v := !v *. Lattice.rescale_factor
    end
  done;
  seq

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Virtual pre-scaling shared by [combine] and the marginal sweep: how
   many rescale chunks to borrow from each operand so that the largest
   product of entries stays representable.  The counts land in the
   arena's [ka]/[kb] fields and are credited back to the result's scale
   (or cancel in a normalised marginal). *)
let prechunk (arena : Arena.t) a b =
  arena.ka <- 0;
  arena.kb <- 0;
  (* lint: alloc=ma,mb -- two scratch cells per prechunk *)
  let ma = ref (Lattice.max_abs a) and mb = ref (Lattice.max_abs b) in
  while !ma *. !mb > Lattice.rescale_threshold do
    if !ma >= !mb then begin
      arena.ka <- arena.ka + 1;
      ma := !ma *. Lattice.rescale_factor
    end
    else begin
      arena.kb <- arena.kb + 1;
      mb := !mb *. Lattice.rescale_factor
    end
  done

(* Copies [src] into the scratch profile [dst] with [k] rescale chunks
   applied per entry — the same multiply-one-chunk-at-a-time sequence
   the reference combine performs per term, done once per operand so the
   kernel reads plain doubles.  Exact: storing and reloading a double is
   the identity. *)
let load_chunked dst src k =
  for u = 0 to Lattice.capacity src do
    Lattice.unsafe_set dst u (Lattice.apply_chunks (Lattice.unsafe_get src u) k)
  done

(* Dense kernel (both strides 1): every (u, v) pair contributes, so the
   stride test and its integer division disappear from the inner loop.
   Blocked over (output, v) tiles of edge [ctx.tile] so the grid rows
   the inner loop touches stay cache-resident; each output [total]
   still accumulates its terms in strictly increasing [v] order — the
   v-blocks are visited in ascending order and the partial sum is parked
   in the output cell between blocks — so the floating-point addition
   sequence per output is exactly the reference kernel's. *)
let kernel_dense ctx left right result lo hi =
  let w1 = ctx.w1 and w2 = ctx.w2 in
  let tile = ctx.tile in
  (* lint: alloc=t0,v0,sum -- three scratch cells for the whole kernel *)
  let t0 = ref lo and v0 = ref 0 and sum = ref 0. in
  while !t0 <= hi do
    let t1 = min hi (!t0 + tile - 1) in
    for total = !t0 to t1 do
      Lattice.unsafe_set result total 0.
    done;
    v0 := 0;
    while !v0 <= t1 do
      let v1 = !v0 + tile - 1 in
      for total = max !t0 !v0 to t1 do
        sum := Lattice.unsafe_get result total;
        let vmax = min v1 total in
        for v = !v0 to vmax do
          let u = total - v in
          sum :=
            !sum
            +. (Lattice.unsafe_get left u *. Lattice.Grid.unsafe_get w1 u v)
               *. (Lattice.unsafe_get right v *. Lattice.Grid.unsafe_get w2 u v)
        done;
        Lattice.unsafe_set result total !sum
      done;
      v0 := !v0 + tile
    done;
    t0 := !t0 + tile
  done

(* Strided kernel: identical iteration to the reference combine ([v]
   ascending by [sb], [u mod sa] test), with unchecked accessors and
   pre-chunked operands. *)
let kernel_strided ctx left right ~sa ~sb result lo hi =
  let w1 = ctx.w1 and w2 = ctx.w2 in
  (* lint: alloc=sum,v -- two scratch cells for the whole kernel *)
  let sum = ref 0. and v = ref 0 in
  for total = lo to hi do
    sum := 0.;
    v := 0;
    while !v <= total do
      let u = total - !v in
      if u mod sa = 0 then
        sum :=
          !sum
          +. (Lattice.unsafe_get left u *. Lattice.Grid.unsafe_get w1 u !v)
             *. (Lattice.unsafe_get right !v *. Lattice.Grid.unsafe_get w2 u !v);
      v := !v + sb
    done;
    Lattice.unsafe_set result total !sum
  done

let run_kernel ctx left right ~sa ~sb result lo hi =
  if sa = 1 && sb = 1 then kernel_dense ctx left right result lo hi
  else kernel_strided ctx left right ~sa ~sb result lo hi

(* Deterministic band boundaries.  The kernel's cost at output [total]
   is proportional to [total + 1] (the length of its v-sum), so an
   even split of output *indices* would give the last band several
   times the work of the first.  Splitting the cumulative triangular
   work — boundary [i] at the output where i/bands of the total
   term count lies below — balances the bands: for 2 bands the split
   lands near cap/sqrt(2), not cap/2.  Pure arithmetic on (cap, bands)
   — never on scheduling — so banded results are a function of the
   operands alone. *)
let band_lo cap bands i =
  if i <= 0 then 0
  else if i >= bands then cap + 1
  else
    let n = float_of_int (cap + 1) in
    let lo =
      int_of_float (n *. sqrt (float_of_int i /. float_of_int bands))
    in
    if lo > cap + 1 then cap + 1 else lo

(* Splits one large combine's output lattice into [band_domains] row
   bands dispatched through the persistent {!Band_pool} (band 0 runs on
   the calling domain).  Each band writes a disjoint output range of
   [result]'s Bigarray (GC-opaque, so domains share it without tearing
   the runtime) and only reads the operands and grids; every output
   index is computed by exactly one band with the same per-output term
   order as the sequential kernel, so the result is bit-identical
   however many domains run.  [counter] is the solve-local banded
   counter of the build/update in flight (contexts are shared
   process-wide, so the context's own running total cannot attribute
   banded combines to one solve). *)
let combine_banded ctx counter left right ~sa ~sb result =
  let bands = ctx.band_domains in
  (* lint: guarded=ctx,left,right,result — bands write disjoint output rows; operands and grids are read-only during the kernel *)
  (* lint: alloc=closure -- one band thunk per banded combine *)
  Band_pool.run ~bands (fun i ->
      let lo = band_lo ctx.cap bands i in
      let hi = band_lo ctx.cap bands (i + 1) - 1 in
      if lo <= hi then run_kernel ctx left right ~sa ~sb result lo hi);
  Atomic.incr ctx.banded_total;
  if counter != ctx.banded_total then Atomic.incr counter

(* Tilted convolution (A * B)(u+v) = sum A(u) B(v) w1(u,v) w2(u,v).
   Never mutates its operands — tree nodes are shared across re-solves —
   so any pre-scaling needed to keep products representable is applied
   to scratch copies in the per-domain arena (or skipped entirely when
   no chunks are borrowed, the common case); the borrowed chunks are
   credited back to the result's scale.  The summation order (increasing
   v) is fixed per output, so recombining the same operands is
   bit-identical no matter which solve path — sequential, banded, or
   pool-mapped — runs.  The result lattice comes from the arena's free
   list when recycled nodes are available, so a warmed-up update loop
   allocates nothing on the major heap.  [combine_into] threads the
   solve-local banded counter; the public [combine] attributes banded
   combines to the context's running total only. *)
let combine_into ctx counter a b =
  let sa = Lattice.stride a and sb = Lattice.stride b in
  let arena = Domain.DLS.get ctx.arenas in
  prechunk arena a b;
  let ka = arena.Arena.ka and kb = arena.Arena.kb in
  let left =
    if ka = 0 then a
    else begin
      load_chunked arena.Arena.left a ka;
      arena.Arena.left
    end
  in
  let right =
    if kb = 0 then b
    else begin
      load_chunked arena.Arena.right b kb;
      arena.Arena.right
    end
  in
  let result = Arena.acquire arena ~cap:ctx.cap ~stride:(gcd sa sb) in
  if ctx.cap >= ctx.band_threshold && ctx.band_domains > 1 then
    combine_banded ctx counter left right ~sa ~sb result
  else run_kernel ctx left right ~sa ~sb result 0 ctx.cap;
  Lattice.add_scale result (Lattice.scale a + Lattice.scale b + ka + kb);
  Lattice.normalize result;
  result

let combine ctx a b = combine_into ctx ctx.banded_total a b

(* The pre-kernel reference combine, kept verbatim as the bit-identity
   oracle for the tiled and banded kernels (test_kernel and the bench
   kernel section): checked accessors, per-term chunk application, no
   arena, no tiling, no bands.  Unreachable from the hot roots, so the
   allocation sanctions of the kernel path do not apply here. *)
let combine_naive ctx a b =
  let cap = ctx.cap in
  let sa = Lattice.stride a and sb = Lattice.stride b in
  let result = Lattice.create ~stride:(gcd sa sb) ~capacity:cap () in
  let ka = ref 0 and kb = ref 0 in
  let ma = ref (Lattice.max_abs a) and mb = ref (Lattice.max_abs b) in
  while !ma *. !mb > Lattice.rescale_threshold do
    if !ma >= !mb then begin
      incr ka;
      ma := !ma *. Lattice.rescale_factor
    end
    else begin
      incr kb;
      mb := !mb *. Lattice.rescale_factor
    end
  done;
  let sum = ref 0. and v = ref 0 in
  for total = 0 to cap do
    sum := 0.;
    v := 0;
    while !v <= total do
      let u = total - !v in
      if u mod sa = 0 then begin
        (* Group each operand with its own weight: the weights lie in
           (0, 1], so neither partial product can overflow, and their
           product w1*w2 is never formed alone (it can underflow). *)
        let left = Lattice.apply_chunks (Lattice.get a u) !ka in
        let right = Lattice.apply_chunks (Lattice.get b !v) !kb in
        sum :=
          !sum
          +. (left *. Lattice.Grid.get ctx.w1 u !v)
             *. (right *. Lattice.Grid.get ctx.w2 u !v)
      end;
      v := !v + sb
    done;
    Lattice.set result total !sum
  done;
  Lattice.add_scale result (Lattice.scale a + Lattice.scale b + !ka + !kb);
  Lattice.normalize result;
  result

(* The PR 9 banded dispatch, kept as the comparison baseline for the
   bench band_latency section and the dispatch bit-identity tests: the
   same arena/prechunk/kernel path as [combine], but the bands fan out
   over freshly spawned domains instead of the persistent pool.  Always
   bands when [band_domains > 1] (no threshold test — the caller is
   measuring dispatch).  Like [combine_naive], unreachable from the hot
   roots, so the kernel path's allocation sanctions do not apply. *)
let combine_spawned ctx a b =
  let sa = Lattice.stride a and sb = Lattice.stride b in
  let arena = Domain.DLS.get ctx.arenas in
  prechunk arena a b;
  let ka = arena.Arena.ka and kb = arena.Arena.kb in
  let left =
    if ka = 0 then a
    else begin
      load_chunked arena.Arena.left a ka;
      arena.Arena.left
    end
  in
  let right =
    if kb = 0 then b
    else begin
      load_chunked arena.Arena.right b kb;
      arena.Arena.right
    end
  in
  let result = Arena.acquire arena ~cap:ctx.cap ~stride:(gcd sa sb) in
  let bands = ctx.band_domains in
  if bands > 1 then begin
    (* lint: guarded=ctx,left,right,result — bands write disjoint output rows; operands and grids are read-only during the kernel *)
    let spawned =
      Array.init (bands - 1) (fun i ->
          let i = i + 1 in
          Domain.spawn (fun () ->
              let lo = band_lo ctx.cap bands i in
              let hi = band_lo ctx.cap bands (i + 1) - 1 in
              if lo <= hi then run_kernel ctx left right ~sa ~sb result lo hi))
    in
    let hi0 = band_lo ctx.cap bands 1 - 1 in
    if hi0 >= 0 then run_kernel ctx left right ~sa ~sb result 0 hi0;
    Array.iter Domain.join spawned
  end
  else run_kernel ctx left right ~sa ~sb result 0 ctx.cap;
  Lattice.add_scale result (Lattice.scale a + Lattice.scale b + ka + kb);
  Lattice.normalize result;
  result

(* Physical membership of [l] in [arr] from index [i] — the recycling
   guard of the leave-one-out sweep. *)
let rec lattice_memq l arr i =
  if i >= Array.length arr then false
  else arr.(i) == l || lattice_memq l arr (i + 1)

let rec release_unreturned arena returned fresh =
  match fresh with
  | [] -> ()
  | l :: rest ->
      if not (lattice_memq l returned 0) then Arena.release arena l;
      release_unreturned arena returned rest

module Factor_tree = struct
  (* [levels.(0)] holds the tilted leaves C_1 .. C_R in class order;
     [levels.(k+1).(j)] is [combine levels.(k).(2j) levels.(k).(2j+1)],
     except that a trailing odd node is carried up by physical sharing
     (no dummy combine against the unit profile, so a solve costs
     exactly R-1 combines).  The last level is [| H |].  A model with
     zero classes stores the unit profile as its only node. *)
  type nonrec t = {
    model : Model.t;
    ctx : context;
    levels : Lattice.t array array;
    combines : int; (* combines performed by the build/update that made [t] *)
    banded : int; (* how many of those ran the banded parallel kernel *)
  }

  let sequential_map f n = Array.init n f

  let build_levels ~map ctx counter leaves =
    let combines = ref 0 in
    let acc = ref [ leaves ] in
    let current = ref leaves in
    while Array.length !current > 1 do
      let level = !current in
      let n = Array.length level in
      let next =
        map
          (fun j ->
            if (2 * j) + 1 < n then
              combine_into ctx counter level.(2 * j) level.((2 * j) + 1)
            else level.(2 * j))
          ((n + 1) / 2)
      in
      combines := !combines + (n / 2);
      acc := next :: !acc;
      current := next
    done;
    (Array.of_list (List.rev !acc), !combines)

  let build ?(map = sequential_map) model =
    let ctx =
      shared_context ~inputs:(Model.inputs model) ~outputs:(Model.outputs model)
    in
    (* Solve-local banded counter: the shared context's running total
       spans every build that ever used it, so per-tree attribution —
       which the serve replay byte-identity gate depends on — needs its
       own counter. *)
    let counter = Atomic.make 0 in
    let num = Model.num_classes model in
    let leaves =
      if num = 0 then [| unit_profile ctx.cap |]
      else map (fun r -> class_factor ctx model r) num
    in
    let levels, combines = build_levels ~map ctx counter leaves in
    { model; ctx; levels; combines; banded = Atomic.get counter }

  let model t = t.model
  let num_classes t = Model.num_classes t.model
  let combines t = t.combines
  let banded t = t.banded
  let context t = t.ctx
  let depth t = Array.length t.levels - 1

  let root t =
    let top = t.levels.(Array.length t.levels - 1) in
    top.(0)

  let leaf t r =
    if r < 0 || r >= num_classes t then
      invalid_arg "Convolution.Factor_tree.leaf: class index out of range";
    t.levels.(0).(r)

  let parent_index i = i / 2

  (* The leaf, per-parents and per-level walks of [update] are top-level
     recursions threading their counters as arguments, so the hot update
     path carries no closures or reference cells of its own. *)
  let rec refresh_leaves ctx ~recycle arena model leaves changed =
    match changed with
    | [] -> ()
    | r :: rest ->
        let old = leaves.(r) in
        leaves.(r) <- class_factor ctx model r;
        if recycle then Arena.release arena old;
        refresh_leaves ctx ~recycle arena model leaves rest

  let rec recombine_parents ctx counter ~recycle arena levels k parents
      combines =
    match parents with
    | [] -> combines
    | j :: rest ->
        let level = levels.(k) in
        let n = Array.length level in
        let combines =
          if (2 * j) + 1 < n then begin
            (* A two-child position always holds a combine result of its
               own — carries only land on trailing odd positions — so
               the node replaced here is referenced nowhere else in the
               new tree and may be recycled. *)
            let old = levels.(k + 1).(j) in
            levels.(k + 1).(j) <-
              combine_into ctx counter level.(2 * j) level.((2 * j) + 1);
            if recycle then Arena.release arena old;
            combines + 1
          end
          else begin
            (* Trailing carry: share the (new) child upward; the old
               carried node is the old child, recycled — if at all — at
               its own position. *)
            levels.(k + 1).(j) <- level.(2 * j);
            combines
          end
        in
        recombine_parents ctx counter ~recycle arena levels k rest combines

  let rec update_levels ctx counter ~recycle arena levels k frontier combines =
    if k >= Array.length levels - 1 then combines
    else begin
      let parents = List.sort_uniq compare (List.map parent_index frontier) in
      let combines =
        recombine_parents ctx counter ~recycle arena levels k parents combines
      in
      update_levels ctx counter ~recycle arena levels (k + 1) parents combines
    end

  (* Recombines only the root paths of the changed leaves.  Untouched
     nodes are shared physically with [t], and [combine] is a
     deterministic function of its operands, so the updated tree is
     bit-identical to [build model] at every node.  With [~recycle:true]
     the caller promises to drop [t] entirely: every node the update
     replaces — changed leaves and the recombined internal nodes above
     them — is handed to the arena free list, where the next acquire
     resets it, corrupting [t] (but never the updated tree, which shares
     only untouched nodes). *)
  let update ?(recycle = false) t model =
    if
      Model.inputs model <> Model.inputs t.model
      || Model.outputs model <> Model.outputs t.model
    then invalid_arg "Convolution.Factor_tree.update: switch dimensions differ";
    if Model.num_classes model <> Model.num_classes t.model then
      invalid_arg "Convolution.Factor_tree.update: class count differs";
    match Model.class_delta t.model model with
    | None -> assert false (* dimensions and class count checked above *)
    | Some [] ->
        (* lint: alloc=record -- unchanged classes: one record, no combines *)
        { t with model; combines = 0; banded = 0 }
    | Some changed ->
        let arena = Domain.DLS.get t.ctx.arenas in
        (* lint: alloc=counter -- solve-local banded counter, one per update *)
        let counter = Atomic.make 0 in
        (* lint: alloc=levels -- spine copy, O(log R); nodes stay shared *)
        let levels = Array.map Array.copy t.levels in
        refresh_leaves t.ctx ~recycle arena model levels.(0) changed;
        let combines =
          update_levels t.ctx counter ~recycle arena levels 0 changed 0
        in
        (* lint: alloc=record -- the updated tree value itself *)
        {
          model;
          ctx = t.ctx;
          levels;
          combines;
          banded = Atomic.get counter;
        }

  (* Prefix x suffix sweep: walking the tree top-down with
       comp(root)        = (empty product)
       comp(child)       = comp(parent) * (sibling of child)
     gives at each leaf r the complement H_{-r} = prod_{s<>r} C_s in
     2(R-1) - 2 combines total.  The empty product is represented as
     [None] (combining with the unit profile is a bitwise no-op but
     costs a full O(cap^2) pass), so the root's children receive their
     sibling's value directly, shared physically.  Combines performed
     by the sweep that do not survive into the returned row are
     unreachable afterwards and go back to the arena free list. *)
  let leave_one_out t =
    let num = num_classes t in
    if num = 0 then [||]
    else if num = 1 then
      (* lint: alloc=array -- the degenerate one-class result *)
      [| unit_profile t.ctx.cap |]
    else begin
      (* lint: alloc=comp,fresh,array -- working row + fresh-node ledger *)
      let comp = ref [| None |] and fresh = ref [] in
      for k = Array.length t.levels - 1 downto 1 do
        let children = t.levels.(k - 1) in
        let n = Array.length children in
        let parent_comp = !comp in
        comp :=
          (* lint: alloc=array,closure -- next complement row, one per level *)
          Array.init n (fun i ->
              let above = parent_comp.(i / 2) in
              let sibling =
                if i land 1 = 0 then
                  if i + 1 < n then Some children.(i + 1) else None
                else Some children.(i - 1)
              in
              match above with
              | None -> sibling
              | Some c -> (
                  match sibling with
                  | None -> above
                  | Some s ->
                      let combined = combine t.ctx c s in
                      fresh := combined :: !fresh;
                      Some combined))
      done;
      let result =
        (* lint: alloc=result -- the R complements, the sweep's result *)
        Array.map (* lint: alloc=closure -- unwrap projection, once per sweep *)
          (function Some l -> l | None -> unit_profile t.ctx.cap)
          !comp
      in
      release_unreturned (Domain.DLS.get t.ctx.arenas) result !fresh;
      result
    end
end

type t = {
  model : Model.t;
  ctx : context;
  tree : Factor_tree.t;
  diag : Lattice.t; (* diag.(j) = scaled G(N1 - j, N2 - j) *)
  log_omega : float; (* stored H = true H * exp log_omega *)
  measures : Measures.t;
}

(* One shared diagonal pass serves every class's measures:
     diag.(j) = scaled G(N1-j, N2-j) = sum_u H(u) ratio_j(u),
     ratio_j(u) = prod_{i<u} ((N1-j-i)(N2-j-i)) / ((N1-i)(N2-i)). *)
let diagonal ctx h =
  (* From the arena free list: a recycled tree's diagonal is re-acquired
     by the next solve of the same shape. *)
  let diag =
    Arena.acquire (Domain.DLS.get ctx.arenas) ~cap:ctx.cap ~stride:1
  in
  Lattice.add_scale diag (Lattice.scale h);
  for j = 0 to ctx.cap do
    let sum = ref (Lattice.get h 0) in
    let ratio = ref 1. in
    for u = 1 to ctx.cap - j do
      let i = u - 1 in
      ratio :=
        !ratio
        *. (float_of_int (ctx.n1 - j - i) /. float_of_int (ctx.n1 - i))
        *. (float_of_int (ctx.n2 - j - i) /. float_of_int (ctx.n2 - i));
      sum := !sum +. (Lattice.get h u *. !ratio)
    done;
    Lattice.set diag j !sum
  done;
  diag

(* Unified concurrency chain at reservation depth [d]: the diagonal entry
   diag.(d + j) is the scaled G(N1-d-j, N2-d-j), i.e. the normalisation
   of the same model with [d] ports removed from each side — reduced
   models preserve the per-pair parameters (see Revenue.reduced_model),
   so one diagonal serves every depth.  The chain walks from the deepest
   feasible point up to (N1-d, N2-d), applying
   E_r(p) = P(n1-d,a) P(n2-d,a) B_r(p) (rho_r + (beta_r/mu_r) E_r(p - a I)).
   For Poisson classes the recursion degenerates to
   E_r = rho_r P(N1-d,a) P(N2-d,a) B_r.  [depth = 0] is the paper's
   Step 3 measure; deeper values feed the batched shadow costs. *)
let concurrency_at_depth model diag ~depth r =
  let a = Model.bandwidth model r in
  let rho = Model.rho model r in
  let b_over_mu = Model.beta_over_mu model r in
  let n1 = Model.inputs model - depth and n2 = Model.outputs model - depth in
  let cap = min n1 n2 in
  let budget = if cap < 0 then -1 else cap in
  let e = ref 0. in
  for m = budget / a downto 0 do
    let j = depth + (m * a) in
    let here = Lattice.get diag j in
    let down = if (m + 1) * a > budget then 0. else Lattice.get diag (j + a) in
    if here > 0. && Float.is_finite here && Float.is_finite down then begin
      let non_blocking = down /. here in
      e :=
        Special.permutations (n1 - (m * a)) a
        *. Special.permutations (n2 - (m * a)) a
        *. non_blocking
        *. (rho +. (b_over_mu *. !e))
    end
    else
      (* A rescale flushed this deep entry; its contribution to the chain
         is damped by (beta/mu)^m and is negligible at this depth. *)
      e := 0.
  done;
  !e

let of_tree (tree : Factor_tree.t) =
  let model = tree.Factor_tree.model in
  let ctx = tree.Factor_tree.ctx in
  let h = Factor_tree.root tree in
  let diag = diagonal ctx h in
  let num_classes = Model.num_classes model in
  let corner = Lattice.get diag 0 in
  let non_blocking =
    Array.init num_classes (fun r ->
        let a = Model.bandwidth model r in
        if Model.inputs model < a || Model.outputs model < a then 0.
        else Lattice.get diag a /. corner)
  in
  let concurrency =
    Array.init num_classes (fun r ->
        concurrency_at_depth model diag ~depth:0 r)
  in
  let measures = Measures.of_concurrencies ~model ~non_blocking ~concurrency in
  { model; ctx; tree; diag; log_omega = Lattice.log_scale h; measures }

let solve ?map model = of_tree (Factor_tree.build ?map model)

let solve_delta ?(recycle = false) ~previous model =
  let tree = Factor_tree.update ~recycle previous.tree model in
  (* The caller promised to drop [previous] entirely, and the fresh
     diagonal below is computed from the updated tree, so the previous
     solve's diagonal can seed the free list first. *)
  if recycle then
    Arena.release (Domain.DLS.get previous.ctx.arenas) previous.diag;
  of_tree tree

(* Returns every lattice a dropped solve owns to the current domain's
   free list for this context: all leaves, every internal node that is a
   combine result of its own (a trailing odd node is a physical alias of
   its child, carried upward, so releasing it once at its home position
   is both necessary and sufficient), and the diagonal.  The caller must
   guarantee nothing else references [t] — e.g. a serve registry entry
   evicted once the batch that evicted it has fully drained. *)
let recycle t =
  let arena = Domain.DLS.get t.ctx.arenas in
  let levels = t.tree.Factor_tree.levels in
  let leaves = levels.(0) in
  for i = 0 to Array.length leaves - 1 do
    Arena.release arena leaves.(i)
  done;
  for k = 1 to Array.length levels - 1 do
    let children = Array.length levels.(k - 1) in
    let level = levels.(k) in
    for j = 0 to Array.length level - 1 do
      if (2 * j) + 1 <= children - 1 then Arena.release arena level.(j)
    done
  done;
  Arena.release arena t.diag

let solve_incremental ~previous ~class_index model =
  let num_classes = Model.num_classes model in
  if
    Model.inputs model <> Model.inputs previous.model
    || Model.outputs model <> Model.outputs previous.model
  then invalid_arg "Convolution.solve_incremental: switch dimensions differ";
  if num_classes <> Model.num_classes previous.model then
    invalid_arg "Convolution.solve_incremental: class count differs";
  if class_index < 0 || class_index >= num_classes then
    invalid_arg "Convolution.solve_incremental: class index out of range";
  let old_classes = Model.classes previous.model
  and new_classes = Model.classes model in
  for r = 0 to num_classes - 1 do
    if r <> class_index && not (Traffic.equal old_classes.(r) new_classes.(r))
    then
      invalid_arg
        (Printf.sprintf
           "Convolution.solve_incremental: class %d also differs from the \
            previous solve (only class %d may change)"
           r class_index)
  done;
  solve_delta ~previous model

let model t = t.model
let measures t = t.measures
let tree t = t.tree
let combine_count t = t.tree.Factor_tree.combines
let banded_combine_count t = t.tree.Factor_tree.banded

let concurrencies_at_depth t ~depth =
  if depth < 0 || depth > t.ctx.cap then
    invalid_arg "Convolution.concurrencies_at_depth: depth outside diagonal";
  Array.init (Model.num_classes t.model) (fun r ->
      concurrency_at_depth t.model t.diag ~depth r)

(* Marginal weights for one class against its complement product: with
   T = H_{-r} and C = C_r,
     p(k_r = m) ∝ C(m a) sum_w T(w) w1(m a, w) w2(m a, w),
   the same term grouping as [combine] restricted to one output row per
   [m].  All scale exponents (leaf, complement, borrowed chunks) are
   constant across [m], so they cancel in the normalisation. *)
let marginal_weights ctx own comp =
  let cap = ctx.cap in
  let a = Lattice.stride own in
  let sc = Lattice.stride comp in
  let arena = Domain.DLS.get ctx.arenas in
  prechunk arena own comp;
  let ka = arena.Arena.ka and kb = arena.Arena.kb in
  Array.init ((cap / a) + 1) (fun m ->
      let u = m * a in
      let own_u = Lattice.apply_chunks (Lattice.get own u) ka in
      let sum = ref 0. in
      let v = ref 0 in
      while !v <= cap - u do
        let other = Lattice.apply_chunks (Lattice.get comp !v) kb in
        sum :=
          !sum
          +. (own_u *. Lattice.Grid.get ctx.w1 u !v)
             *. (other *. Lattice.Grid.get ctx.w2 u !v);
        v := !v + sc
      done;
      !sum)

let per_class_distributions t =
  let complements = Factor_tree.leave_one_out t.tree in
  Array.mapi
    (fun r comp ->
      let own = Factor_tree.leaf t.tree r in
      let weights = marginal_weights t.ctx own comp in
      Measures.distribution_of_weights ~model:t.model ~class_index:r ~weights)
    complements

let log_g t ~inputs ~outputs =
  if
    inputs < 0 || outputs < 0
    || inputs > Model.inputs t.model
    || outputs > Model.outputs t.model
  then invalid_arg "Convolution.log_g: outside lattice";
  let h = Factor_tree.root t.tree in
  let sum = ref (Lattice.get h 0) in
  let ratio = ref 1. in
  for u = 1 to min inputs outputs do
    let i = u - 1 in
    ratio :=
      !ratio
      *. (float_of_int (inputs - i) /. float_of_int (t.ctx.n1 - i))
      *. (float_of_int (outputs - i) /. float_of_int (t.ctx.n2 - i));
    sum := !sum +. (Lattice.get h u *. !ratio)
  done;
  (* G(n1, n2) >= 1 for every feasible lattice point (the empty state
     always contributes), so a non-positive scaled value can only mean
     dynamic rescaling flushed the contributing entries: the point sits
     so many orders of magnitude below the corner that [G * omega]
     underflowed.  Propagating [log 0. = -inf] here silently corrupts
     downstream blocking and revenue arithmetic, so refuse instead. *)
  if not (!sum > 0.) then
    failwith
      (Printf.sprintf
         "Convolution.log_g: lattice entry (%d, %d) was flushed to zero by \
          %d dynamic rescale(s); it lies too far below G(%d, %d) to \
          represent.  Solve a model of that size directly, or use \
          Mva.log_normalization"
         inputs outputs (Lattice.scale h) (Model.inputs t.model)
         (Model.outputs t.model));
  Logspace.log_checked !sum -. t.log_omega

let log_normalization t =
  log_g t ~inputs:(Model.inputs t.model) ~outputs:(Model.outputs t.model)

let rescale_count t = Lattice.scale t.diag
