module Special = Crossbar_numerics.Special
module Logspace = Crossbar_numerics.Logspace

(* The recurrence of Algorithm 1 factors per class (see DESIGN.md,
   "Class-factored convolution").  Writing Q(n1,n2) = G(n1,n2)/(n1! n2!)
   and matching coefficients in the paper's direction-1 recurrence shows

     G(n1, n2) = sum_u H(u) P(n1, u) P(n2, u),      P(n, u) = n!/(n-u)!

   where H = h_1 * ... * h_R is the 1-D convolution over used bandwidth
   [u] of per-class generating sequences h_r: for a class of bandwidth
   [a], per-pair intensity [rho] and burst ratio [theta = beta/mu],

     h_r(k a) = rho (rho + theta) ... (rho + (k-1) theta) / k!

   (Poisson classes are theta = 0, i.e. rho^k/k!; Bernoulli classes have
   theta < 0 and truncate at the source count).  We store each factor in
   corner-tilted form C_r(u) = h_r(u) P(N1,u) P(N2,u) so that every
   entry is bounded by the corner normalisation G(N1,N2) and the
   Section 6 dynamic rescale applies per partial product; tilted factors
   combine with the precomputed weights

     w_i(u, v) = P(N_i, u+v) / (P(N_i, u) P(N_i, v))
               = prod_{j<u} (N_i - j - v)/(N_i - j)   in (0, 1].

   The combine is associative up to rounding, so the factors can be
   multiplied in any tree shape; this module fixes one shape — a
   balanced binary tree with leaves C_1 .. C_R in class order — and
   makes it *the* solver.  Re-solving after changing any subset of the
   classes recombines only the root paths of the changed leaves
   (O(#changed log R) combines), and because the untouched nodes are
   shared physically and [combine] is deterministic, the result is
   bit-identical to a full rebuild.  The same tree yields every
   leave-one-out complement H_{-r} = prod_{s<>r} C_s in one top-down
   sweep of O(R) combines (the prefix x suffix identity; see
   docs/THEORY.md), which batches per-class marginal distributions and
   all R shadow costs out of a single solve. *)

type context = {
  n1 : int;
  n2 : int;
  cap : int; (* min n1 n2: used bandwidth never exceeds either side *)
  w1 : Lattice.Grid.t;
  w2 : Lattice.Grid.t;
}

let weight_grid ~ports ~cap =
  let g = Lattice.Grid.create ~rows:(cap + 1) ~cols:(cap + 1) in
  for v = 0 to cap do
    Lattice.Grid.set g 0 v 1.;
    for u = 1 to cap - v do
      let j = u - 1 in
      Lattice.Grid.set g u v
        (Lattice.Grid.get g j v
        *. (float_of_int (ports - j - v) /. float_of_int (ports - j)))
    done
  done;
  g

let context_of ~inputs ~outputs =
  let cap = min inputs outputs in
  {
    n1 = inputs;
    n2 = outputs;
    cap;
    w1 = weight_grid ~ports:inputs ~cap;
    w2 = weight_grid ~ports:outputs ~cap;
  }

let unit_profile cap =
  let l = Lattice.create ~capacity:cap () in
  Lattice.set l 0 1.;
  l

(* Tilted per-class sequence via the chain
     v_k = step_k (C(u - a) + theta v_{k-1}),   C(u) = rho v_k / k
   at u = k a, with step_k = P(N1-(k-1)a, a) P(N2-(k-1)a, a) carrying
   the corner tilt along so magnitudes track G rather than h alone. *)
let class_factor ctx model r =
  let a = Model.bandwidth model r in
  let rho = Model.rho model r in
  let theta = Model.beta_over_mu model r in
  let seq = Lattice.create ~stride:a ~capacity:ctx.cap () in
  Lattice.set seq 0 1.;
  (* lint: alloc=v -- one chain cell per class factor, O(R) per solve *)
  let v = ref 0. in
  for k = 1 to ctx.cap / a do
    let u = k * a in
    let step =
      Special.permutations (ctx.n1 - ((k - 1) * a)) a
      *. Special.permutations (ctx.n2 - ((k - 1) * a)) a
    in
    v := step *. (Lattice.get seq (u - a) +. (theta *. !v));
    let value = rho *. !v /. float_of_int k in
    if not (Float.is_finite value && Float.is_finite !v) then
      failwith
        "Convolution.solve: overflow within a single recurrence step; \
         use Mva.solve for this parameter regime";
    Lattice.set seq u value;
    if Float.max (Float.abs value) (Float.abs !v) > Lattice.rescale_threshold
    then begin
      Lattice.rescale seq;
      v := !v *. Lattice.rescale_factor
    end
  done;
  seq

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Applies [chunks] rescale chunks one multiplication at a time:
   rescale_factor^2 already underflows to zero, so the chunks cannot be
   collapsed into a single factor.  Tail recursion keeps the value in a
   register — same left-to-right multiplication sequence as the old
   reference cell, so results are bit-identical. *)
let rec apply_chunks value chunks =
  if chunks = 0 then value
  else apply_chunks (value *. Lattice.rescale_factor) (chunks - 1)

(* Virtual pre-scaling shared by [combine] and the marginal sweep: how
   many rescale chunks to borrow from each operand so that the largest
   product of entries stays representable.  The chunks are credited back
   to the result's scale (or cancel in a normalised marginal). *)
let prechunk a b =
  (* lint: alloc=ka,kb -- four scratch cells, amortised over the pass *)
  let ka = ref 0 and kb = ref 0 in
  (* lint: alloc=ma,mb -- see above; ka,kb,ma,mb are one constant-size set *)
  let ma = ref (Lattice.max_abs a) and mb = ref (Lattice.max_abs b) in
  while !ma *. !mb > Lattice.rescale_threshold do
    if !ma >= !mb then begin
      incr ka;
      ma := !ma *. Lattice.rescale_factor
    end
    else begin
      incr kb;
      mb := !mb *. Lattice.rescale_factor
    end
  done;
  (* lint: alloc=tuple -- the borrowed chunk counts are the result *)
  (!ka, !kb)

(* Tilted convolution (A * B)(u+v) = sum A(u) B(v) w1(u,v) w2(u,v).
   Never mutates its operands — tree nodes are shared across re-solves —
   so any pre-scaling needed to keep products representable is applied
   virtually, per side, while the terms are formed; the borrowed chunks
   are credited back to the result's scale.  The summation order
   (increasing v) is fixed, so recombining the same operands is
   bit-identical no matter which solve path runs. *)
let combine ctx a b =
  let cap = ctx.cap in
  let sa = Lattice.stride a and sb = Lattice.stride b in
  let result = Lattice.create ~stride:(gcd sa sb) ~capacity:cap () in
  let ka, kb = prechunk a b in
  (* lint: alloc=sum,v -- two scratch cells for the whole O(cap^2) pass *)
  let sum = ref 0. and v = ref 0 in
  for total = 0 to cap do
    sum := 0.;
    v := 0;
    while !v <= total do
      let u = total - !v in
      if u mod sa = 0 then begin
        (* Group each operand with its own weight: the weights lie in
           (0, 1], so neither partial product can overflow, and their
           product w1*w2 is never formed alone (it can underflow). *)
        let left = apply_chunks (Lattice.get a u) ka in
        let right = apply_chunks (Lattice.get b !v) kb in
        sum :=
          !sum
          +. (left *. Lattice.Grid.get ctx.w1 u !v)
             *. (right *. Lattice.Grid.get ctx.w2 u !v)
      end;
      v := !v + sb
    done;
    Lattice.set result total !sum
  done;
  Lattice.add_scale result (Lattice.scale a + Lattice.scale b + ka + kb);
  Lattice.normalize result;
  result

module Factor_tree = struct
  (* [levels.(0)] holds the tilted leaves C_1 .. C_R in class order;
     [levels.(k+1).(j)] is [combine levels.(k).(2j) levels.(k).(2j+1)],
     except that a trailing odd node is carried up by physical sharing
     (no dummy combine against the unit profile, so a solve costs
     exactly R-1 combines).  The last level is [| H |].  A model with
     zero classes stores the unit profile as its only node. *)
  type nonrec t = {
    model : Model.t;
    ctx : context;
    levels : Lattice.t array array;
    combines : int; (* combines performed by the build/update that made [t] *)
  }

  let sequential_map f n = Array.init n f

  let build_levels ~map ctx leaves =
    let combines = ref 0 in
    let acc = ref [ leaves ] in
    let current = ref leaves in
    while Array.length !current > 1 do
      let level = !current in
      let n = Array.length level in
      let next =
        map
          (fun j ->
            if (2 * j) + 1 < n then combine ctx level.(2 * j) level.((2 * j) + 1)
            else level.(2 * j))
          ((n + 1) / 2)
      in
      combines := !combines + (n / 2);
      acc := next :: !acc;
      current := next
    done;
    (Array.of_list (List.rev !acc), !combines)

  let build ?(map = sequential_map) model =
    let ctx =
      context_of ~inputs:(Model.inputs model) ~outputs:(Model.outputs model)
    in
    let num = Model.num_classes model in
    let leaves =
      if num = 0 then [| unit_profile ctx.cap |]
      else map (fun r -> class_factor ctx model r) num
    in
    let levels, combines = build_levels ~map ctx leaves in
    { model; ctx; levels; combines }

  let model t = t.model
  let num_classes t = Model.num_classes t.model
  let combines t = t.combines
  let depth t = Array.length t.levels - 1

  let root t =
    let top = t.levels.(Array.length t.levels - 1) in
    top.(0)

  let leaf t r =
    if r < 0 || r >= num_classes t then
      invalid_arg "Convolution.Factor_tree.leaf: class index out of range";
    t.levels.(0).(r)

  (* Recombines only the root paths of the changed leaves.  Untouched
     nodes are shared physically with [t], and [combine] is a
     deterministic function of its operands, so the updated tree is
     bit-identical to [build model] at every node. *)
  let update t model =
    if
      Model.inputs model <> Model.inputs t.model
      || Model.outputs model <> Model.outputs t.model
    then invalid_arg "Convolution.Factor_tree.update: switch dimensions differ";
    if Model.num_classes model <> Model.num_classes t.model then
      invalid_arg "Convolution.Factor_tree.update: class count differs";
    match Model.class_delta t.model model with
    | None -> assert false (* dimensions and class count checked above *)
    | Some [] ->
        (* lint: alloc=record -- unchanged classes: one record, no combines *)
        { t with model; combines = 0 }
    | Some changed ->
        (* lint: alloc=levels -- spine copy, O(log R); nodes stay shared *)
        let levels = Array.map Array.copy t.levels in
        List.iter
          (* lint: alloc=closure -- one leaf-refresh closure per update *)
          (fun r -> levels.(0).(r) <- class_factor t.ctx model r)
          changed;
        (* lint: alloc=combines,frontier -- two cells per update *)
        let combines = ref 0 and frontier = ref changed in
        for k = 0 to Array.length levels - 2 do
          let level = levels.(k) in
          let n = Array.length level in
          let parents =
            (* lint: alloc=closure -- parent-index map, O(log R) per update *)
            List.sort_uniq compare (List.map (fun i -> i / 2) !frontier)
          in
          List.iter
            (* lint: alloc=closure -- one recombine closure per level *)
            (fun j ->
              if (2 * j) + 1 < n then begin
                levels.(k + 1).(j) <-
                  combine t.ctx level.(2 * j) level.((2 * j) + 1);
                incr combines
              end
              else levels.(k + 1).(j) <- level.(2 * j))
            parents;
          frontier := parents
        done;
        (* lint: alloc=record -- the updated tree value itself *)
        { model; ctx = t.ctx; levels; combines = !combines }

  (* Prefix x suffix sweep: walking the tree top-down with
       comp(root)        = (empty product)
       comp(child)       = comp(parent) * (sibling of child)
     gives at each leaf r the complement H_{-r} = prod_{s<>r} C_s in
     2(R-1) - 2 combines total.  The empty product is represented as
     [None] (combining with the unit profile is a bitwise no-op but
     costs a full O(cap^2) pass), so the root's children receive their
     sibling's value directly, shared physically. *)
  let leave_one_out t =
    let num = num_classes t in
    if num = 0 then [||]
    else if num = 1 then
      (* lint: alloc=array -- the degenerate one-class result *)
      [| unit_profile t.ctx.cap |]
    else begin
      (* lint: alloc=comp,array -- the sweep's working row, O(R) words *)
      let comp = ref [| None |] in
      for k = Array.length t.levels - 1 downto 1 do
        let children = t.levels.(k - 1) in
        let n = Array.length children in
        let parent_comp = !comp in
        comp :=
          (* lint: alloc=array,closure -- next complement row, one per level *)
          Array.init n (fun i ->
              let above = parent_comp.(i / 2) in
              let sibling =
                if i land 1 = 0 then
                  if i + 1 < n then Some children.(i + 1) else None
                else Some children.(i - 1)
              in
              (* lint: alloc=tuple -- scrutinee pair, erased by flambda *)
              match (above, sibling) with
              | None, None -> None
              | None, Some s -> Some s
              | Some c, None -> Some c
              | Some c, Some s -> Some (combine t.ctx c s))
      done;
      (* lint: alloc=array -- the R complements, the sweep's result *)
      Array.map (* lint: alloc=closure -- unwrap projection, once per sweep *)
        (function Some l -> l | None -> unit_profile t.ctx.cap)
        !comp
    end
end

type t = {
  model : Model.t;
  ctx : context;
  tree : Factor_tree.t;
  diag : Lattice.t; (* diag.(j) = scaled G(N1 - j, N2 - j) *)
  log_omega : float; (* stored H = true H * exp log_omega *)
  measures : Measures.t;
}

(* One shared diagonal pass serves every class's measures:
     diag.(j) = scaled G(N1-j, N2-j) = sum_u H(u) ratio_j(u),
     ratio_j(u) = prod_{i<u} ((N1-j-i)(N2-j-i)) / ((N1-i)(N2-i)). *)
let diagonal ctx h =
  let diag = Lattice.create ~capacity:ctx.cap () in
  Lattice.add_scale diag (Lattice.scale h);
  for j = 0 to ctx.cap do
    let sum = ref (Lattice.get h 0) in
    let ratio = ref 1. in
    for u = 1 to ctx.cap - j do
      let i = u - 1 in
      ratio :=
        !ratio
        *. (float_of_int (ctx.n1 - j - i) /. float_of_int (ctx.n1 - i))
        *. (float_of_int (ctx.n2 - j - i) /. float_of_int (ctx.n2 - i));
      sum := !sum +. (Lattice.get h u *. !ratio)
    done;
    Lattice.set diag j !sum
  done;
  diag

(* Unified concurrency chain at reservation depth [d]: the diagonal entry
   diag.(d + j) is the scaled G(N1-d-j, N2-d-j), i.e. the normalisation
   of the same model with [d] ports removed from each side — reduced
   models preserve the per-pair parameters (see Revenue.reduced_model),
   so one diagonal serves every depth.  The chain walks from the deepest
   feasible point up to (N1-d, N2-d), applying
   E_r(p) = P(n1-d,a) P(n2-d,a) B_r(p) (rho_r + (beta_r/mu_r) E_r(p - a I)).
   For Poisson classes the recursion degenerates to
   E_r = rho_r P(N1-d,a) P(N2-d,a) B_r.  [depth = 0] is the paper's
   Step 3 measure; deeper values feed the batched shadow costs. *)
let concurrency_at_depth model diag ~depth r =
  let a = Model.bandwidth model r in
  let rho = Model.rho model r in
  let b_over_mu = Model.beta_over_mu model r in
  let n1 = Model.inputs model - depth and n2 = Model.outputs model - depth in
  let cap = min n1 n2 in
  let budget = if cap < 0 then -1 else cap in
  let e = ref 0. in
  for m = budget / a downto 0 do
    let j = depth + (m * a) in
    let here = Lattice.get diag j in
    let down = if (m + 1) * a > budget then 0. else Lattice.get diag (j + a) in
    if here > 0. && Float.is_finite here && Float.is_finite down then begin
      let non_blocking = down /. here in
      e :=
        Special.permutations (n1 - (m * a)) a
        *. Special.permutations (n2 - (m * a)) a
        *. non_blocking
        *. (rho +. (b_over_mu *. !e))
    end
    else
      (* A rescale flushed this deep entry; its contribution to the chain
         is damped by (beta/mu)^m and is negligible at this depth. *)
      e := 0.
  done;
  !e

let of_tree (tree : Factor_tree.t) =
  let model = tree.Factor_tree.model in
  let ctx = tree.Factor_tree.ctx in
  let h = Factor_tree.root tree in
  let diag = diagonal ctx h in
  let num_classes = Model.num_classes model in
  let corner = Lattice.get diag 0 in
  let non_blocking =
    Array.init num_classes (fun r ->
        let a = Model.bandwidth model r in
        if Model.inputs model < a || Model.outputs model < a then 0.
        else Lattice.get diag a /. corner)
  in
  let concurrency =
    Array.init num_classes (fun r ->
        concurrency_at_depth model diag ~depth:0 r)
  in
  let measures = Measures.of_concurrencies ~model ~non_blocking ~concurrency in
  { model; ctx; tree; diag; log_omega = Lattice.log_scale h; measures }

let solve ?map model = of_tree (Factor_tree.build ?map model)
let solve_delta ~previous model = of_tree (Factor_tree.update previous.tree model)

let solve_incremental ~previous ~class_index model =
  let num_classes = Model.num_classes model in
  if
    Model.inputs model <> Model.inputs previous.model
    || Model.outputs model <> Model.outputs previous.model
  then invalid_arg "Convolution.solve_incremental: switch dimensions differ";
  if num_classes <> Model.num_classes previous.model then
    invalid_arg "Convolution.solve_incremental: class count differs";
  if class_index < 0 || class_index >= num_classes then
    invalid_arg "Convolution.solve_incremental: class index out of range";
  let old_classes = Model.classes previous.model
  and new_classes = Model.classes model in
  for r = 0 to num_classes - 1 do
    if r <> class_index && not (Traffic.equal old_classes.(r) new_classes.(r))
    then
      invalid_arg
        (Printf.sprintf
           "Convolution.solve_incremental: class %d also differs from the \
            previous solve (only class %d may change)"
           r class_index)
  done;
  solve_delta ~previous model

let model t = t.model
let measures t = t.measures
let tree t = t.tree
let combine_count t = t.tree.Factor_tree.combines

let concurrencies_at_depth t ~depth =
  if depth < 0 || depth > t.ctx.cap then
    invalid_arg "Convolution.concurrencies_at_depth: depth outside diagonal";
  Array.init (Model.num_classes t.model) (fun r ->
      concurrency_at_depth t.model t.diag ~depth r)

(* Marginal weights for one class against its complement product: with
   T = H_{-r} and C = C_r,
     p(k_r = m) ∝ C(m a) sum_w T(w) w1(m a, w) w2(m a, w),
   the same term grouping as [combine] restricted to one output row per
   [m].  All scale exponents (leaf, complement, borrowed chunks) are
   constant across [m], so they cancel in the normalisation. *)
let marginal_weights ctx own comp =
  let cap = ctx.cap in
  let a = Lattice.stride own in
  let sc = Lattice.stride comp in
  let ka, kb = prechunk own comp in
  Array.init ((cap / a) + 1) (fun m ->
      let u = m * a in
      let own_u = apply_chunks (Lattice.get own u) ka in
      let sum = ref 0. in
      let v = ref 0 in
      while !v <= cap - u do
        let other = apply_chunks (Lattice.get comp !v) kb in
        sum :=
          !sum
          +. (own_u *. Lattice.Grid.get ctx.w1 u !v)
             *. (other *. Lattice.Grid.get ctx.w2 u !v);
        v := !v + sc
      done;
      !sum)

let per_class_distributions t =
  let complements = Factor_tree.leave_one_out t.tree in
  Array.mapi
    (fun r comp ->
      let own = Factor_tree.leaf t.tree r in
      let weights = marginal_weights t.ctx own comp in
      Measures.distribution_of_weights ~model:t.model ~class_index:r ~weights)
    complements

let log_g t ~inputs ~outputs =
  if
    inputs < 0 || outputs < 0
    || inputs > Model.inputs t.model
    || outputs > Model.outputs t.model
  then invalid_arg "Convolution.log_g: outside lattice";
  let h = Factor_tree.root t.tree in
  let sum = ref (Lattice.get h 0) in
  let ratio = ref 1. in
  for u = 1 to min inputs outputs do
    let i = u - 1 in
    ratio :=
      !ratio
      *. (float_of_int (inputs - i) /. float_of_int (t.ctx.n1 - i))
      *. (float_of_int (outputs - i) /. float_of_int (t.ctx.n2 - i));
    sum := !sum +. (Lattice.get h u *. !ratio)
  done;
  (* G(n1, n2) >= 1 for every feasible lattice point (the empty state
     always contributes), so a non-positive scaled value can only mean
     dynamic rescaling flushed the contributing entries: the point sits
     so many orders of magnitude below the corner that [G * omega]
     underflowed.  Propagating [log 0. = -inf] here silently corrupts
     downstream blocking and revenue arithmetic, so refuse instead. *)
  if not (!sum > 0.) then
    failwith
      (Printf.sprintf
         "Convolution.log_g: lattice entry (%d, %d) was flushed to zero by \
          %d dynamic rescale(s); it lies too far below G(%d, %d) to \
          represent.  Solve a model of that size directly, or use \
          Mva.log_normalization"
         inputs outputs (Lattice.scale h) (Model.inputs t.model)
         (Model.outputs t.model));
  Logspace.log_checked !sum -. t.log_omega

let log_normalization t =
  log_g t ~inputs:(Model.inputs t.model) ~outputs:(Model.outputs t.model)

let rescale_count t = Lattice.scale t.diag
