module Special = Crossbar_numerics.Special
module Logspace = Crossbar_numerics.Logspace

(* The recurrence of Algorithm 1 factors per class (see DESIGN.md,
   "Class-factored convolution").  Writing Q(n1,n2) = G(n1,n2)/(n1! n2!)
   and matching coefficients in the paper's direction-1 recurrence shows

     G(n1, n2) = sum_u H(u) P(n1, u) P(n2, u),      P(n, u) = n!/(n-u)!

   where H = h_1 * ... * h_R is the 1-D convolution over used bandwidth
   [u] of per-class generating sequences h_r: for a class of bandwidth
   [a], per-pair intensity [rho] and burst ratio [theta = beta/mu],

     h_r(k a) = rho (rho + theta) ... (rho + (k-1) theta) / k!

   (Poisson classes are theta = 0, i.e. rho^k/k!; Bernoulli classes have
   theta < 0 and truncate at the source count).  We store each factor in
   corner-tilted form C_r(u) = h_r(u) P(N1,u) P(N2,u) so that every
   entry is bounded by the corner normalisation G(N1,N2) and the
   Section 6 dynamic rescale applies per partial product; tilted factors
   combine with the precomputed weights

     w_i(u, v) = P(N_i, u+v) / (P(N_i, u) P(N_i, v))
               = prod_{j<u} (N_i - j - v)/(N_i - j)   in (0, 1].

   A full solve is a left fold over the factors; an incremental re-solve
   of one class reuses the shared prefix products and refolds from the
   changed class with the identical operation sequence, so full and
   incremental results are bit-identical. *)

type context = {
  n1 : int;
  n2 : int;
  cap : int; (* min n1 n2: used bandwidth never exceeds either side *)
  w1 : Lattice.Grid.t;
  w2 : Lattice.Grid.t;
}

type t = {
  model : Model.t;
  ctx : context;
  factors : Lattice.t array; (* tilted per-class sequences C_r *)
  prefixes : Lattice.t array; (* prefixes.(k) = C_1 * ... * C_k *)
  diag : Lattice.t; (* diag.(j) = scaled G(N1 - j, N2 - j) *)
  log_omega : float; (* stored H = true H * exp log_omega *)
  measures : Measures.t;
}

let weight_grid ~ports ~cap =
  let g = Lattice.Grid.create ~rows:(cap + 1) ~cols:(cap + 1) in
  for v = 0 to cap do
    Lattice.Grid.set g 0 v 1.;
    for u = 1 to cap - v do
      let j = u - 1 in
      Lattice.Grid.set g u v
        (Lattice.Grid.get g j v
        *. (float_of_int (ports - j - v) /. float_of_int (ports - j)))
    done
  done;
  g

let context_of ~inputs ~outputs =
  let cap = min inputs outputs in
  {
    n1 = inputs;
    n2 = outputs;
    cap;
    w1 = weight_grid ~ports:inputs ~cap;
    w2 = weight_grid ~ports:outputs ~cap;
  }

let unit_profile cap =
  let l = Lattice.create ~capacity:cap () in
  Lattice.set l 0 1.;
  l

(* Tilted per-class sequence via the chain
     v_k = step_k (C(u - a) + theta v_{k-1}),   C(u) = rho v_k / k
   at u = k a, with step_k = P(N1-(k-1)a, a) P(N2-(k-1)a, a) carrying
   the corner tilt along so magnitudes track G rather than h alone. *)
let class_factor ctx model r =
  let a = Model.bandwidth model r in
  let rho = Model.rho model r in
  let theta = Model.beta_over_mu model r in
  let seq = Lattice.create ~stride:a ~capacity:ctx.cap () in
  Lattice.set seq 0 1.;
  let v = ref 0. in
  for k = 1 to ctx.cap / a do
    let u = k * a in
    let step =
      Special.permutations (ctx.n1 - ((k - 1) * a)) a
      *. Special.permutations (ctx.n2 - ((k - 1) * a)) a
    in
    v := step *. (Lattice.get seq (u - a) +. (theta *. !v));
    let value = rho *. !v /. float_of_int k in
    if not (Float.is_finite value && Float.is_finite !v) then
      failwith
        "Convolution.solve: overflow within a single recurrence step; \
         use Mva.solve for this parameter regime";
    Lattice.set seq u value;
    if Float.max (Float.abs value) (Float.abs !v) > Lattice.rescale_threshold
    then begin
      Lattice.rescale seq;
      v := !v *. Lattice.rescale_factor
    end
  done;
  seq

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Applies [chunks] rescale chunks one multiplication at a time:
   rescale_factor^2 already underflows to zero, so the chunks cannot be
   collapsed into a single factor. *)
let apply_chunks value chunks =
  let x = ref value in
  for _ = 1 to chunks do
    x := !x *. Lattice.rescale_factor
  done;
  !x

(* Tilted convolution (A * B)(u+v) = sum A(u) B(v) w1(u,v) w2(u,v).
   Never mutates its operands — prefixes are shared with incremental
   re-solves — so any pre-scaling needed to keep products representable
   is applied virtually, per side, while the terms are formed; the
   borrowed chunks are credited back to the result's scale.  The
   summation order (increasing v) is fixed, so refolding the same
   operands is bit-identical no matter which solve path runs. *)
let combine ctx a b =
  let cap = ctx.cap in
  let sa = Lattice.stride a and sb = Lattice.stride b in
  let result = Lattice.create ~stride:(gcd sa sb) ~capacity:cap () in
  let ka = ref 0 and kb = ref 0 in
  let ma = ref (Lattice.max_abs a) and mb = ref (Lattice.max_abs b) in
  while !ma *. !mb > Lattice.rescale_threshold do
    if !ma >= !mb then begin
      incr ka;
      ma := !ma *. Lattice.rescale_factor
    end
    else begin
      incr kb;
      mb := !mb *. Lattice.rescale_factor
    end
  done;
  for total = 0 to cap do
    let sum = ref 0. in
    let v = ref 0 in
    while !v <= total do
      let u = total - !v in
      if u mod sa = 0 then begin
        (* Group each operand with its own weight: the weights lie in
           (0, 1], so neither partial product can overflow, and their
           product w1*w2 is never formed alone (it can underflow). *)
        let left = apply_chunks (Lattice.get a u) !ka in
        let right = apply_chunks (Lattice.get b !v) !kb in
        sum :=
          !sum
          +. (left *. Lattice.Grid.get ctx.w1 u !v)
             *. (right *. Lattice.Grid.get ctx.w2 u !v)
      end;
      v := !v + sb
    done;
    Lattice.set result total !sum
  done;
  Lattice.add_scale result (Lattice.scale a + Lattice.scale b + !ka + !kb);
  Lattice.normalize result;
  result

let refold ctx factors prefixes ~from =
  for i = from to Array.length factors - 1 do
    prefixes.(i + 1) <- combine ctx prefixes.(i) factors.(i)
  done

(* One shared diagonal pass serves every class's measures:
     diag.(j) = scaled G(N1-j, N2-j) = sum_u H(u) ratio_j(u),
     ratio_j(u) = prod_{i<u} ((N1-j-i)(N2-j-i)) / ((N1-i)(N2-i)). *)
let diagonal ctx h =
  let diag = Lattice.create ~capacity:ctx.cap () in
  Lattice.add_scale diag (Lattice.scale h);
  for j = 0 to ctx.cap do
    let sum = ref (Lattice.get h 0) in
    let ratio = ref 1. in
    for u = 1 to ctx.cap - j do
      let i = u - 1 in
      ratio :=
        !ratio
        *. (float_of_int (ctx.n1 - j - i) /. float_of_int (ctx.n1 - i))
        *. (float_of_int (ctx.n2 - j - i) /. float_of_int (ctx.n2 - i));
      sum := !sum +. (Lattice.get h u *. !ratio)
    done;
    Lattice.set diag j !sum
  done;
  diag

(* Unified concurrency chain: walks the class-r diagonal from the deepest
   feasible point up to (N1, N2), applying
   E_r(p) = P(n1,a) P(n2,a) B_r(p) (rho_r + (beta_r/mu_r) E_r(p - a I)).
   For Poisson classes the recursion degenerates to
   E_r = rho_r P(N1,a) P(N2,a) B_r. *)
let concurrency_of_diag model diag r =
  let a = Model.bandwidth model r in
  let rho = Model.rho model r in
  let b_over_mu = Model.beta_over_mu model r in
  let n1 = Model.inputs model and n2 = Model.outputs model in
  let cap = min n1 n2 in
  let e = ref 0. in
  for m = cap / a downto 0 do
    let j = m * a in
    let here = Lattice.get diag j in
    let down = if j + a > cap then 0. else Lattice.get diag (j + a) in
    if here > 0. && Float.is_finite here && Float.is_finite down then begin
      let non_blocking = down /. here in
      e :=
        Special.permutations (n1 - j) a
        *. Special.permutations (n2 - j) a
        *. non_blocking
        *. (rho +. (b_over_mu *. !e))
    end
    else
      (* A rescale flushed this deep entry; its contribution to the chain
         is damped by (beta/mu)^m and is negligible at this depth. *)
      e := 0.
  done;
  !e

let finalize model ctx factors prefixes =
  let h = prefixes.(Array.length factors) in
  let diag = diagonal ctx h in
  let num_classes = Model.num_classes model in
  let corner = Lattice.get diag 0 in
  let non_blocking =
    Array.init num_classes (fun r ->
        let a = Model.bandwidth model r in
        if Model.inputs model < a || Model.outputs model < a then 0.
        else Lattice.get diag a /. corner)
  in
  let concurrency =
    Array.init num_classes (fun r -> concurrency_of_diag model diag r)
  in
  let measures = Measures.of_concurrencies ~model ~non_blocking ~concurrency in
  { model; ctx; factors; prefixes; diag; log_omega = Lattice.log_scale h; measures }

let solve model =
  let ctx =
    context_of ~inputs:(Model.inputs model) ~outputs:(Model.outputs model)
  in
  let num_classes = Model.num_classes model in
  let factors = Array.init num_classes (fun r -> class_factor ctx model r) in
  let prefixes = Array.make (num_classes + 1) (unit_profile ctx.cap) in
  refold ctx factors prefixes ~from:0;
  finalize model ctx factors prefixes

let solve_incremental ~previous ~class_index model =
  let num_classes = Model.num_classes model in
  if
    Model.inputs model <> Model.inputs previous.model
    || Model.outputs model <> Model.outputs previous.model
  then invalid_arg "Convolution.solve_incremental: switch dimensions differ";
  if num_classes <> Model.num_classes previous.model then
    invalid_arg "Convolution.solve_incremental: class count differs";
  if class_index < 0 || class_index >= num_classes then
    invalid_arg "Convolution.solve_incremental: class index out of range";
  let old_classes = Model.classes previous.model
  and new_classes = Model.classes model in
  for r = 0 to num_classes - 1 do
    if r <> class_index && not (Traffic.equal old_classes.(r) new_classes.(r))
    then
      invalid_arg
        (Printf.sprintf
           "Convolution.solve_incremental: class %d also differs from the \
            previous solve (only class %d may change)"
           r class_index)
  done;
  let ctx = previous.ctx in
  let factors = Array.copy previous.factors in
  factors.(class_index) <- class_factor ctx model class_index;
  (* Prefix products up to the changed class are shared with [previous]
     (combine never mutates them); everything after is refolded with the
     same left-fold order a full solve uses, so the results match it
     bit for bit. *)
  let prefixes = Array.copy previous.prefixes in
  refold ctx factors prefixes ~from:class_index;
  finalize model ctx factors prefixes

let model t = t.model
let measures t = t.measures

let log_g t ~inputs ~outputs =
  if
    inputs < 0 || outputs < 0
    || inputs > Model.inputs t.model
    || outputs > Model.outputs t.model
  then invalid_arg "Convolution.log_g: outside lattice";
  let h = t.prefixes.(Array.length t.factors) in
  let sum = ref (Lattice.get h 0) in
  let ratio = ref 1. in
  for u = 1 to min inputs outputs do
    let i = u - 1 in
    ratio :=
      !ratio
      *. (float_of_int (inputs - i) /. float_of_int (t.ctx.n1 - i))
      *. (float_of_int (outputs - i) /. float_of_int (t.ctx.n2 - i));
    sum := !sum +. (Lattice.get h u *. !ratio)
  done;
  (* G(n1, n2) >= 1 for every feasible lattice point (the empty state
     always contributes), so a non-positive scaled value can only mean
     dynamic rescaling flushed the contributing entries: the point sits
     so many orders of magnitude below the corner that [G * omega]
     underflowed.  Propagating [log 0. = -inf] here silently corrupts
     downstream blocking and revenue arithmetic, so refuse instead. *)
  if not (!sum > 0.) then
    failwith
      (Printf.sprintf
         "Convolution.log_g: lattice entry (%d, %d) was flushed to zero by \
          %d dynamic rescale(s); it lies too far below G(%d, %d) to \
          represent.  Solve a model of that size directly, or use \
          Mva.log_normalization"
         inputs outputs (Lattice.scale h) (Model.inputs t.model)
         (Model.outputs t.model));
  Logspace.log_checked !sum -. t.log_omega

let log_normalization t =
  log_g t ~inputs:(Model.inputs t.model) ~outputs:(Model.outputs t.model)

let rescale_count t = Lattice.scale t.diag
