(** Traffic classes with Bernoulli–Poisson–Pascal (BPP) arrival statistics.

    A class [r] describes one stream of connection requests:

    - [bandwidth] ([a_r] in the paper): the number of crossbar inputs {e
      and} outputs one connection occupies (multi-rate traffic);
    - [alpha], [beta]: the {e aggregate} ("tilde") BPP parameters — class
      [r] requests for one particular set of [a_r] inputs (and {e any}
      outputs) arrive at rate [alpha + beta * k_r] when [k_r] connections
      are up.  The per-(input-set, output-set) parameters used by the
      product form are obtained by dividing by [C(N2, a_r)], which is done
      by {!Model} because it depends on the switch;
    - [service_rate] ([mu_r]): reciprocal of the mean holding time.  The
      stationary distribution is insensitive to the holding-time
      distribution beyond its mean.

    The sign of [beta] selects the arrival statistics: [beta < 0] is
    Bernoulli (smooth, finite-source), [beta = 0] Poisson (regular),
    [0 < beta] Pascal (peaky). *)

type t = private {
  name : string;
  bandwidth : int;
  alpha : float; (* aggregate state-independent arrival rate, >= 0 *)
  beta : float; (* aggregate state-dependent arrival increment *)
  service_rate : float; (* mu_r > 0 *)
}

type statistics = Smooth | Regular | Peaky
(** Bernoulli / Poisson / Pascal, following the paper's Z-factor naming. *)

val create :
  ?name:string -> bandwidth:int -> alpha:float -> beta:float ->
  service_rate:float -> unit -> t
(** General BPP class.
    @raise Invalid_argument if [bandwidth < 1], [alpha < 0] or
    [service_rate <= 0]. *)

val poisson :
  ?name:string -> bandwidth:int -> rate:float -> service_rate:float ->
  unit -> t
(** Poisson class ([beta = 0]) with aggregate arrival rate [rate]. *)

val pascal :
  ?name:string -> bandwidth:int -> alpha:float -> beta:float ->
  service_rate:float -> unit -> t
(** Peaky class.
    @raise Invalid_argument unless [beta > 0]. *)

val bernoulli :
  ?name:string -> bandwidth:int -> sources:int -> per_source_rate:float ->
  service_rate:float -> unit -> t
(** Smooth finite-source class: [sources] independent sources each idle →
    requesting at rate [per_source_rate], i.e. [alpha = sources * rate],
    [beta = -rate].
    @raise Invalid_argument if [sources < 1] or [per_source_rate <= 0]. *)

val statistics : t -> statistics
(** Classification by the sign of [beta]. *)

val is_poisson : t -> bool

val offered_load : t -> float
(** Aggregate offered load [rho~ = alpha / mu] (per input-set). *)

val sources : t -> int option
(** For a Bernoulli class with [alpha / (-beta)] integral, the equivalent
    number of sources; [None] otherwise. *)

val equal : t -> t -> bool
(** Exact structural equality: name, bandwidth, and bit-pattern equality
    of the three rate parameters.  Two classes built from the same
    parameters are equal; any perturbation, however small, is not —
    the comparison the incremental solver and sweep cache key on. *)

val with_alpha : t -> float -> t
(** Copy with a new aggregate [alpha] (same validation as {!create}). *)

val with_beta : t -> float -> t

val scale_load : t -> float -> t
(** [scale_load t c] multiplies both [alpha] and [beta] by [c], scaling the
    offered load while preserving peakedness structure. *)

val infinite_server_mean : alpha:float -> beta:float -> service_rate:float -> float
(** Mean [M = alpha / (mu (1 - beta/mu))] of the number of busy servers
    when this BPP stream feeds an infinite server group — the paper's [M]
    with [alpha, beta] already divided by [mu].  Requires [beta < mu]. *)

val infinite_server_variance : alpha:float -> beta:float -> service_rate:float -> float

val peakedness : beta:float -> service_rate:float -> float
(** The Z-factor [Z = V/M = 1/(1 - beta/mu)]: [Z > 1] peaky, [Z = 1]
    regular, [Z < 1] smooth. *)

val pp : Format.formatter -> t -> unit
