module Special = Crossbar_numerics.Special
module State_space = Crossbar_markov.State_space
module Ctmc = Crossbar_markov.Ctmc

type t = {
  describe : string;
  admits : class_index:int -> load:int -> bandwidth:int -> bool;
}

let unrestricted =
  {
    describe = "unrestricted";
    admits = (fun ~class_index:_ ~load:_ ~bandwidth:_ -> true);
  }

let trunk_reservation ~thresholds =
  Array.iter
    (fun threshold ->
      if threshold < 0 then
        invalid_arg "Admission.trunk_reservation: negative threshold")
    thresholds;
  let thresholds = Array.copy thresholds in
  {
    describe =
      Printf.sprintf "trunk-reservation [%s]"
        (String.concat "; "
           (Array.to_list (Array.map string_of_int thresholds)));
    admits =
      (fun ~class_index ~load ~bandwidth ->
        if class_index >= Array.length thresholds then
          invalid_arg "Admission.trunk_reservation: class index out of range";
        load + bandwidth <= thresholds.(class_index));
  }

let custom ~describe admits = { describe; admits }
let admits t = t.admits
let describe t = t.describe

let check_class_count model policy =
  (* Probe every class once so length mismatches surface eagerly. *)
  for r = 0 to Model.num_classes model - 1 do
    ignore
      (policy.admits ~class_index:r ~load:0
         ~bandwidth:(Model.bandwidth model r))
  done

(* Reachable states under the policy (closed under departures, so BFS over
   admissible births from the empty state suffices). *)
let reachable_states model policy =
  let space = Model.state_space model in
  let capacity = Model.capacity model in
  let reachable = Array.make (State_space.size space) false in
  let queue = Queue.create () in
  let start = State_space.index space (Array.make (Model.num_classes model) 0) in
  reachable.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let k = State_space.state space i in
    let load = State_space.load space i in
    for r = 0 to Model.num_classes model - 1 do
      let a = Model.bandwidth model r in
      if
        load + a <= capacity
        && policy.admits ~class_index:r ~load ~bandwidth:a
        && Model.arrival_rate model ~class_index:r ~concurrent:k.(r) > 0.
      then begin
        let target = Array.copy k in
        target.(r) <- target.(r) + 1;
        let j = State_space.index space target in
        if not reachable.(j) then begin
          reachable.(j) <- true;
          Queue.add j queue
        end
      end
    done
  done;
  let members = ref [] in
  Array.iteri (fun i r -> if r then members := i :: !members) reachable;
  Array.of_list (List.rev !members)

let chain model ~policy =
  check_class_count model policy;
  let space = Model.state_space model in
  if State_space.size space > 20_000 then
    failwith "Admission.chain: state space too large for exact solve";
  let members = reachable_states model policy in
  let dense_of_space = Hashtbl.create (Array.length members) in
  Array.iteri (fun dense i -> Hashtbl.replace dense_of_space i dense) members;
  let n1 = Model.inputs model and n2 = Model.outputs model in
  let ctmc =
    Ctmc.build ~states:(Array.length members) ~f:(fun dense ->
        let i = members.(dense) in
        let k = State_space.state space i in
        let load = State_space.load space i in
        let transitions = ref [] in
        for r = 0 to Model.num_classes model - 1 do
          let a = Model.bandwidth model r in
          (* Guarded birth. *)
          if
            load + a <= Model.capacity model
            && policy.admits ~class_index:r ~load ~bandwidth:a
          then begin
            let rate =
              Special.permutations (n1 - load) a
              *. Special.permutations (n2 - load) a
              *. Model.arrival_rate model ~class_index:r ~concurrent:k.(r)
            in
            if rate > 0. then begin
              let target = Array.copy k in
              target.(r) <- target.(r) + 1;
              transitions :=
                ( Hashtbl.find dense_of_space (State_space.index space target),
                  rate )
                :: !transitions
            end
          end;
          (* Death. *)
          if k.(r) > 0 then begin
            let target = Array.copy k in
            target.(r) <- target.(r) - 1;
            transitions :=
              ( Hashtbl.find dense_of_space (State_space.index space target),
                float_of_int k.(r) *. Model.service_rate model r )
              :: !transitions
          end
        done;
        !transitions)
  in
  (ctmc, members)

let solve model ~policy =
  let ctmc, members = chain model ~policy in
  let pi = Ctmc.solve_gth ctmc in
  let space = Model.state_space model in
  let n1 = Model.inputs model and n2 = Model.outputs model in
  let num_classes = Model.num_classes model in
  let concurrency = Array.make num_classes 0. in
  let non_blocking = Array.make num_classes 0. in
  Array.iteri
    (fun dense i ->
      let k = State_space.state space i in
      let load = State_space.load space i in
      for r = 0 to num_classes - 1 do
        concurrency.(r) <-
          concurrency.(r) +. (float_of_int k.(r) *. pi.(dense));
        let a = Model.bandwidth model r in
        if
          load + a <= Model.capacity model
          && policy.admits ~class_index:r ~load ~bandwidth:a
        then
          (* Probability a uniformly chosen port set is free and the
             policy says yes. *)
          non_blocking.(r) <-
            non_blocking.(r)
            +. pi.(dense)
               *. (Special.permutations (n1 - load) a
                  *. Special.permutations (n2 - load) a
                  /. (Special.permutations n1 a *. Special.permutations n2 a))
      done)
    members;
  Measures.of_concurrencies ~model ~non_blocking ~concurrency
