module Special = Crossbar_numerics.Special
module Logspace = Crossbar_numerics.Logspace
module State_space = Crossbar_markov.State_space

type spec = {
  name : string;
  bandwidth : int;
  arrival_rate : int -> float;
  service_rate : float;
}

type result = {
  non_blocking : float array;
  concurrency : float array;
  log_normalization : float;
}

let max_states = 2_000_000

let validate classes =
  if classes = [] then invalid_arg "General: no classes";
  List.iter
    (fun spec ->
      if spec.bandwidth < 1 then invalid_arg "General: bandwidth < 1";
      if not (spec.service_rate > 0.) then
        invalid_arg "General: service_rate <= 0")
    classes

(* log Phi tables up to the capacity bound, one per class. *)
let phi_tables ~capacity classes =
  Array.of_list
    (List.map
       (fun spec ->
         let max_k = capacity / spec.bandwidth in
         let table = Array.make (max_k + 1) neg_infinity in
         table.(0) <- 0.;
         let exhausted = ref false in
         for l = 1 to max_k do
           if not !exhausted then begin
             let rate = spec.arrival_rate (l - 1) in
             if rate > 0. then
               table.(l) <-
                 table.(l - 1)
                 +. Logspace.log_checked rate
                 -. Logspace.log_checked (float_of_int l *. spec.service_rate)
             else exhausted := true
           end
         done;
         table)
       classes)

let space_of ~capacity classes =
  let weights = Array.of_list (List.map (fun s -> s.bandwidth) classes) in
  let space = State_space.create ~weights ~capacity in
  if State_space.size space > max_states then
    failwith
      (Printf.sprintf "General: state space too large (%d states)"
         (State_space.size space));
  space

let log_weight ~tables ~weights ~inputs ~outputs k =
  let load = ref 0 in
  Array.iteri (fun r count -> load := !load + (count * weights.(r))) k;
  let psi =
    Special.log_permutations inputs !load
    +. Special.log_permutations outputs !load
  in
  let log_zero l = Logspace.is_zero (Logspace.of_log l) in
  if log_zero psi then neg_infinity
  else begin
    let phi = ref 0. in
    (try
       Array.iteri
         (fun r count ->
           let contribution = tables.(r).(count) in
           if log_zero contribution then raise Exit;
           phi := !phi +. contribution)
         k
     with Exit -> phi := neg_infinity);
    if log_zero !phi then neg_infinity else psi +. !phi
  end

let log_terms ~space ~tables ~weights ~inputs ~outputs =
  let terms = Array.make (State_space.size space) neg_infinity in
  State_space.iter space (fun i k ->
      terms.(i) <- log_weight ~tables ~weights ~inputs ~outputs k);
  terms

let log_sum terms =
  Logspace.to_log (Logspace.sum (Array.map Logspace.of_log terms))

let log_g ~inputs ~outputs ~classes =
  validate classes;
  let capacity = min inputs outputs in
  let space = space_of ~capacity classes in
  let tables = phi_tables ~capacity classes in
  let weights = State_space.weights space in
  log_sum (log_terms ~space ~tables ~weights ~inputs ~outputs)

let solve ~inputs ~outputs ~classes =
  validate classes;
  let capacity = min inputs outputs in
  let space = space_of ~capacity classes in
  let tables = phi_tables ~capacity classes in
  let weights = State_space.weights space in
  let terms = log_terms ~space ~tables ~weights ~inputs ~outputs in
  let log_normalization = log_sum terms in
  let num_classes = List.length classes in
  let concurrency = Array.make num_classes 0. in
  let accumulators =
    Array.init num_classes (fun _ -> Crossbar_numerics.Kahan.create ())
  in
  State_space.iter space (fun i k ->
      let weight = Logspace.exp_log (terms.(i) -. log_normalization) in
      Array.iteri
        (fun r count ->
          Crossbar_numerics.Kahan.add accumulators.(r)
            (float_of_int count *. weight))
        k);
  Array.iteri
    (fun r acc -> concurrency.(r) <- Crossbar_numerics.Kahan.total acc)
    accumulators;
  let non_blocking =
    Array.of_list
      (List.map
         (fun spec ->
           let inputs' = inputs - spec.bandwidth
           and outputs' = outputs - spec.bandwidth in
           if inputs' < 0 || outputs' < 0 then 0.
           else
             Logspace.exp_log
               (log_sum
                  (log_terms ~space ~tables ~weights ~inputs:inputs'
                     ~outputs:outputs')
               -. log_normalization))
         classes)
  in
  { non_blocking; concurrency; log_normalization }

let log_state_weight ~inputs ~outputs ~classes k =
  validate classes;
  if Array.length k <> List.length classes then
    invalid_arg "General.log_state_weight: state length mismatch";
  let capacity =
    (* Tables must cover the given occupancies even beyond min(n1,n2);
       infeasible states fall out through Psi = 0. *)
    List.fold_left2
      (fun acc spec count -> max acc (count * spec.bandwidth))
      (min inputs outputs) classes (Array.to_list k)
  in
  let tables = phi_tables ~capacity classes in
  let weights = Array.of_list (List.map (fun s -> s.bandwidth) classes) in
  log_weight ~tables ~weights ~inputs ~outputs k

let distribution ~inputs ~outputs ~classes =
  validate classes;
  let capacity = min inputs outputs in
  let space = space_of ~capacity classes in
  let tables = phi_tables ~capacity classes in
  let weights = State_space.weights space in
  let terms = log_terms ~space ~tables ~weights ~inputs ~outputs in
  let log_normalization = log_sum terms in
  (space, Array.map (fun lw -> Logspace.exp_log (lw -. log_normalization)) terms)

let load_distribution ~inputs ~outputs ~classes =
  let space, pi = distribution ~inputs ~outputs ~classes in
  let histogram = Array.make (min inputs outputs + 1) 0. in
  State_space.iter space (fun i _ ->
      let load = State_space.load space i in
      histogram.(load) <- histogram.(load) +. pi.(i));
  histogram

let of_model model =
  Array.to_list
    (Array.mapi
       (fun r (c : Traffic.t) ->
         {
           name = c.Traffic.name;
           bandwidth = c.Traffic.bandwidth;
           arrival_rate =
             (fun concurrent ->
               Model.arrival_rate model ~class_index:r ~concurrent);
           service_rate = c.Traffic.service_rate;
         })
       (Model.classes model))
