module Logspace = Crossbar_numerics.Logspace

(* Values above this trigger an adaptive rescale (paper Section 6). *)
let rescale_threshold = 1e250
let rescale_factor = 0x1.0p-830 (* 2^-830 ~ 1.4e-250 *)
let log_rescale_factor = Logspace.log_checked rescale_factor

type t = {
  values : floatarray;
  capacity : int;
  stride : int;
  mutable scale : int;
}

let create ?(stride = 1) ~capacity () =
  if capacity < 0 then invalid_arg "Lattice.create: negative capacity";
  if stride < 1 then invalid_arg "Lattice.create: stride < 1";
  (* lint: alloc=record -- the result lattice itself, one per combine *)
  { values = Float.Array.make (capacity + 1) 0.; capacity; stride; scale = 0 }

let capacity t = t.capacity
let stride t = t.stride
let scale t = t.scale
let get t u = Float.Array.get t.values u
let set t u x = Float.Array.set t.values u x

let max_abs t =
  (* lint: alloc=m -- one scratch cell for the whole scan *)
  let m = ref 0. in
  for u = 0 to t.capacity do
    let x = Float.abs (Float.Array.get t.values u) in
    if x > !m then m := x
  done;
  !m

let add_scale t k =
  if k < 0 then invalid_arg "Lattice.add_scale: negative chunk count";
  t.scale <- t.scale + k

let rescale t =
  for u = 0 to t.capacity do
    Float.Array.set t.values u (Float.Array.get t.values u *. rescale_factor)
  done;
  t.scale <- t.scale + 1

let normalize t =
  while max_abs t > rescale_threshold do
    rescale t
  done

let log_scale t = float_of_int t.scale *. log_rescale_factor

module Grid = struct
  type t = { data : floatarray; rows : int; cols : int }

  let create ~rows ~cols =
    if rows < 1 || cols < 1 then invalid_arg "Lattice.Grid.create: empty";
    (* lint: alloc=record -- grids are per-context, not per combine *)
    { data = Float.Array.make (rows * cols) 0.; rows; cols }

  let rows t = t.rows
  let cols t = t.cols

  let get t i j =
    if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
      invalid_arg "Lattice.Grid.get: out of bounds";
    Float.Array.get t.data ((i * t.cols) + j)

  let set t i j x =
    if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
      invalid_arg "Lattice.Grid.set: out of bounds";
    Float.Array.set t.data ((i * t.cols) + j) x
end
