module Logspace = Crossbar_numerics.Logspace

(* Values above this trigger an adaptive rescale (paper Section 6). *)
let rescale_threshold = 1e250
let rescale_factor = 0x1.0p-830 (* 2^-830 ~ 1.4e-250 *)
let log_rescale_factor = Logspace.log_checked rescale_factor

type values =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  values : values;
  capacity : int;
  mutable stride : int;
  mutable scale : int;
}

let create ?(stride = 1) ~capacity () =
  if capacity < 0 then invalid_arg "Lattice.create: negative capacity";
  if stride < 1 then invalid_arg "Lattice.create: stride < 1";
  let values =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (capacity + 1)
  in
  Bigarray.Array1.fill values 0.;
  (* lint: alloc=record -- the result lattice itself, one per combine *)
  { values; capacity; stride; scale = 0 }

let capacity t = t.capacity
let stride t = t.stride
let scale t = t.scale
let get t u = Bigarray.Array1.get t.values u
let set t u x = Bigarray.Array1.set t.values u x
let unsafe_get t u = Bigarray.Array1.unsafe_get t.values u
let unsafe_set t u x = Bigarray.Array1.unsafe_set t.values u x

let reset ?(stride = 1) t =
  if stride < 1 then invalid_arg "Lattice.reset: stride < 1";
  Bigarray.Array1.fill t.values 0.;
  t.stride <- stride;
  t.scale <- 0

let max_abs t =
  (* lint: alloc=m -- one scratch cell for the whole scan *)
  let m = ref 0. in
  for u = 0 to t.capacity do
    let x = Float.abs (Bigarray.Array1.unsafe_get t.values u) in
    if x > !m then m := x
  done;
  !m

let add_scale t k =
  if k < 0 then invalid_arg "Lattice.add_scale: negative chunk count";
  t.scale <- t.scale + k

(* Applies [chunks] rescale chunks one multiplication at a time:
   rescale_factor^2 already underflows to zero, so the chunks cannot be
   collapsed into a single factor.  Tail recursion keeps the value in a
   register — same left-to-right multiplication sequence as a reference
   cell, so results are bit-identical to repeated [rescale] passes. *)
let rec apply_chunks value chunks =
  if chunks = 0 then value
  else apply_chunks (value *. rescale_factor) (chunks - 1)

let rescale t =
  for u = 0 to t.capacity do
    Bigarray.Array1.unsafe_set t.values u
      (Bigarray.Array1.unsafe_get t.values u *. rescale_factor)
  done;
  t.scale <- t.scale + 1

(* Chunks needed to bring a magnitude [m] at or below the threshold —
   the count the old [while max_abs t > threshold do rescale t done]
   loop performed, computed from one [frexp] instead of one full-lattice
   scan per chunk.  Exactness: multiplying by rescale_factor shifts the
   binary exponent by exactly 830 as long as the value stays normal, and
   the minimal [k] leaves [m] above [threshold * rescale_factor ~ 1.4],
   so every step of the replaced loop was exact and the comparison can
   be done on (mantissa, exponent) pairs directly.  Non-finite maxima
   are left alone: no number of chunks can bring an infinity below the
   threshold (the old loop would not terminate). *)
let chunks_for m =
  if not (m > rescale_threshold) || not (Float.is_finite m) then 0
  else begin
    let mm, em = Float.frexp m in
    let mt, et = Float.frexp rescale_threshold in
    let k = (em - et) / 830 in
    if em - (830 * k) < et || (em - (830 * k) = et && mm <= mt) then k
    else k + 1
  end

let normalize t =
  let k = chunks_for (max_abs t) in
  if k > 0 then begin
    for u = 0 to t.capacity do
      Bigarray.Array1.unsafe_set t.values u
        (apply_chunks (Bigarray.Array1.unsafe_get t.values u) k)
    done;
    t.scale <- t.scale + k
  end

let log_scale t = float_of_int t.scale *. log_rescale_factor

module Grid = struct
  type t = { data : values; rows : int; cols : int }

  let create ~rows ~cols =
    if rows < 1 || cols < 1 then invalid_arg "Lattice.Grid.create: empty";
    let data =
      Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols)
    in
    Bigarray.Array1.fill data 0.;
    (* lint: alloc=record -- grids are per-context, not per combine *)
    { data; rows; cols }

  let rows t = t.rows
  let cols t = t.cols

  let get t i j =
    if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
      invalid_arg "Lattice.Grid.get: out of bounds";
    Bigarray.Array1.get t.data ((i * t.cols) + j)

  let set t i j x =
    if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
      invalid_arg "Lattice.Grid.set: out of bounds";
    Bigarray.Array1.set t.data ((i * t.cols) + j) x

  let unsafe_get t i j = Bigarray.Array1.unsafe_get t.data ((i * t.cols) + j)

  let unsafe_set t i j x =
    Bigarray.Array1.unsafe_set t.data ((i * t.cols) + j) x
end
