(** Flat [Bigarray] storage for the convolution solver's scaled
    sequences (paper Section 6 dynamic rescaling, tracked per partial
    product).

    The class-factored form of Algorithm 1 (see DESIGN.md,
    "Class-factored convolution") works on one-dimensional profiles over
    used bandwidth [u = 0 .. capacity] rather than the full
    [(N1+1) x (N2+1)] lattice.  Each profile carries

    - a flat unboxed [float64] [Bigarray.Array1] of values (no per-row
      indirection, GC-opaque, and safe for several domains to write
      disjoint index ranges of — the banded combine kernel relies on
      both properties);
    - a [stride]: entries are guaranteed zero except at multiples of it
      (a class of bandwidth [a] only populates multiples of [a]), which
      combine loops exploit;
    - an integer [scale]: the stored values are the true values times
      [rescale_factor ^ scale].  Scales add when two profiles are
      convolved, so the Section 6 rescale is tracked per partial product
      and cancelled only when a measure ratio is formed. *)

type t

val rescale_threshold : float
(** Magnitudes above this trigger an adaptive rescale ([1e250]). *)

val rescale_factor : float
(** One rescale chunk, [2^-830] — a power of two, so rescaling is exact
    in the significand and only the exponent moves. *)

val create : ?stride:int -> capacity:int -> unit -> t
(** All-zero profile over [0 .. capacity] with [scale = 0].  [stride]
    defaults to 1.
    @raise Invalid_argument if [capacity < 0] or [stride < 1]. *)

val capacity : t -> int
val stride : t -> int

val scale : t -> int
(** Number of [rescale_factor] chunks folded into the stored values. *)

val get : t -> int -> float
(** Bounds-checked read. @raise Invalid_argument out of bounds. *)

val set : t -> int -> float -> unit
(** Bounds-checked write. @raise Invalid_argument out of bounds. *)

val unsafe_get : t -> int -> float
(** Unchecked read for kernel inner loops whose index ranges are
    established once per pass; out-of-range indices are undefined
    behaviour.  Use {!get} everywhere else. *)

val unsafe_set : t -> int -> float -> unit
(** Unchecked write; see {!unsafe_get}. *)

val reset : ?stride:int -> t -> unit
(** Zeroes every entry and resets [scale] to [0] and [stride] to the
    given value (default 1), making the profile indistinguishable from a
    fresh {!create} of the same capacity — the recycling primitive
    behind [Convolution.Arena].
    @raise Invalid_argument if [stride < 1]. *)

val max_abs : t -> float
(** Largest absolute entry (0. for the all-zero profile). *)

val add_scale : t -> int -> unit
(** Bookkeeping only: credits [k] chunks to [scale] without touching the
    values (used when a combine pre-applied chunks to its operands).
    @raise Invalid_argument if [k < 0]. *)

val apply_chunks : float -> int -> float
(** [apply_chunks x k] multiplies [x] by {!rescale_factor} [k] times,
    one multiplication at a time ([rescale_factor]² underflows, so the
    chunks cannot be collapsed into one factor) — the same left-to-right
    sequence as [k] successive {!rescale} passes, hence bit-identical
    per entry. *)

val rescale : t -> unit
(** Multiplies every entry by {!rescale_factor} once and increments
    [scale]. *)

val normalize : t -> unit
(** Rescales until [max_abs t <= rescale_threshold].  The chunk count is
    computed from one [max_abs] scan and a [frexp] of the maximum (exact
    — each chunk shifts the binary exponent by exactly 830 while the
    value stays normal), then applied in a single pass; bit-identical to
    repeated whole-lattice {!rescale} sweeps.  Non-finite maxima are
    left untouched: no chunk count can bring them below the
    threshold. *)

val log_scale : t -> float
(** [scale * log rescale_factor] — the log of the factor by which stored
    values exceed true values (non-positive). *)

(** Flat two-dimensional float table (row-major [float64]
    [Bigarray.Array1]); backs the precomputed combine-weight tables. *)
module Grid : sig
  type t

  val create : rows:int -> cols:int -> t
  (** All-zero [rows x cols] table.
      @raise Invalid_argument if either dimension is [< 1]. *)

  val rows : t -> int
  val cols : t -> int

  val get : t -> int -> int -> float
  (** @raise Invalid_argument out of bounds. *)

  val set : t -> int -> int -> float -> unit
  (** @raise Invalid_argument out of bounds. *)

  val unsafe_get : t -> int -> int -> float
  (** Unchecked read for kernel inner loops; out-of-range coordinates
      are undefined behaviour.  Use {!get} everywhere else. *)

  val unsafe_set : t -> int -> int -> float -> unit
  (** Unchecked write; see {!unsafe_get}. *)
end
