(** Flat [floatarray] storage for the convolution solver's scaled
    sequences (paper Section 6 dynamic rescaling, tracked per partial
    product).

    The class-factored form of Algorithm 1 (see DESIGN.md,
    "Class-factored convolution") works on one-dimensional profiles over
    used bandwidth [u = 0 .. capacity] rather than the full
    [(N1+1) x (N2+1)] lattice.  Each profile carries

    - a flat unboxed [floatarray] of values (no per-row indirection,
      cache-friendly for the combine inner loop);
    - a [stride]: entries are guaranteed zero except at multiples of it
      (a class of bandwidth [a] only populates multiples of [a]), which
      combine loops exploit;
    - an integer [scale]: the stored values are the true values times
      [rescale_factor ^ scale].  Scales add when two profiles are
      convolved, so the Section 6 rescale is tracked per partial product
      and cancelled only when a measure ratio is formed. *)

type t

val rescale_threshold : float
(** Magnitudes above this trigger an adaptive rescale ([1e250]). *)

val rescale_factor : float
(** One rescale chunk, [2^-830] — a power of two, so rescaling is exact
    in the significand and only the exponent moves. *)

val create : ?stride:int -> capacity:int -> unit -> t
(** All-zero profile over [0 .. capacity] with [scale = 0].  [stride]
    defaults to 1.
    @raise Invalid_argument if [capacity < 0] or [stride < 1]. *)

val capacity : t -> int
val stride : t -> int

val scale : t -> int
(** Number of [rescale_factor] chunks folded into the stored values. *)

val get : t -> int -> float
val set : t -> int -> float -> unit

val max_abs : t -> float
(** Largest absolute entry (0. for the all-zero profile). *)

val add_scale : t -> int -> unit
(** Bookkeeping only: credits [k] chunks to [scale] without touching the
    values (used when a combine pre-applied chunks to its operands).
    @raise Invalid_argument if [k < 0]. *)

val rescale : t -> unit
(** Multiplies every entry by {!rescale_factor} once and increments
    [scale]. *)

val normalize : t -> unit
(** Rescales until [max_abs t <= rescale_threshold]. *)

val log_scale : t -> float
(** [scale * log rescale_factor] — the log of the factor by which stored
    values exceed true values (non-positive). *)

(** Flat two-dimensional float table (row-major [floatarray]); backs the
    precomputed combine-weight tables. *)
module Grid : sig
  type t

  val create : rows:int -> cols:int -> t
  (** All-zero [rows x cols] table.
      @raise Invalid_argument if either dimension is [< 1]. *)

  val rows : t -> int
  val cols : t -> int

  val get : t -> int -> int -> float
  (** @raise Invalid_argument out of bounds. *)

  val set : t -> int -> int -> float -> unit
  (** @raise Invalid_argument out of bounds. *)
end
