(* Benchmark and reproduction harness.

   Part 1 prints, for every table AND figure in the paper's evaluation,
   the series/rows this implementation produces (side by side with the
   published numbers where the paper prints them).  The figure and
   Table 2 sweeps run through the parallel sweep engine
   (Crossbar_engine), which also collects per-solve telemetry.

   Part 2 times the computational contributions with Bechamel: one
   Test.make per paper table/figure (the cost of regenerating it), plus an
   ablation of Algorithm 1 vs Algorithm 2 vs brute-force enumeration
   across switch sizes — the complexity claims of paper Section 5.

     dune exec bench/main.exe                         # reproduction + timings
     dune exec bench/main.exe -- --fast               # reproduction only
     dune exec bench/main.exe -- --fast --json b.json # + telemetry snapshot

   --json PATH writes a machine-readable perf snapshot (schema
   "crossbar-bench/1", documented in DESIGN.md) and re-parses the file
   before exiting, failing loudly if it is malformed. *)

open Bechamel
module Paper = Crossbar_workloads.Paper
module Report = Crossbar_workloads.Report
module Engine = Crossbar_engine
module Json = Crossbar_engine.Json

let line title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---------- part 1: reproduction ---------- *)

let reproduce ?telemetry () =
  line "Reproduction of every figure and table (measured | paper)";
  Report.print_all ?telemetry Format.std_formatter;
  Format.print_flush ()

(* ---------- part 2: Bechamel timing ---------- *)

let whole_figure ?(sizes = Paper.sizes) series () =
  List.iter
    (fun s ->
      List.iter
        (fun n ->
          ignore (Crossbar.Solver.solve (s.Paper.model_of_size n)))
        sizes)
    series

let whole_table2 () =
  List.iter
    (fun set ->
      List.iter
        (fun n -> ignore (Crossbar.Solver.solve (Paper.table2_model set n)))
        Paper.table2_sizes)
    Paper.table2_sets

let solve_with algorithm model () =
  ignore (Crossbar.Solver.solve ~algorithm model)

let tests =
  let reproduction =
    Test.make_grouped ~name:"reproduce"
      [
        Test.make ~name:"figure1" (Staged.stage (whole_figure Paper.figure1));
        Test.make ~name:"figure2" (Staged.stage (whole_figure Paper.figure2));
        Test.make ~name:"figure3" (Staged.stage (whole_figure Paper.figure3));
        Test.make ~name:"figure4"
          (Staged.stage (whole_figure ~sizes:Paper.figure4_sizes Paper.figure4));
        Test.make ~name:"table2" (Staged.stage whole_table2);
      ]
  in
  let algorithms =
    (* The Section 5 ablation: both recurrences are O(N1 N2 R); the brute
       force is exponential and only feasible at toy sizes. *)
    let mixed n =
      Crossbar.Model.square ~size:n
        ~classes:
          [
            Crossbar.Traffic.poisson ~name:"p" ~bandwidth:1 ~rate:0.01
              ~service_rate:1.0 ();
            Crossbar.Traffic.pascal ~name:"q" ~bandwidth:2 ~alpha:0.01
              ~beta:0.004 ~service_rate:1.0 ();
          ]
    in
    Test.make_grouped ~name:"algorithms"
      ([
         Test.make ~name:"brute N=8"
           (Staged.stage (solve_with Crossbar.Solver.Brute_force (mixed 8)));
       ]
      @ List.concat_map
          (fun n ->
            [
              Test.make
                ~name:(Printf.sprintf "algorithm1 N=%d" n)
                (Staged.stage (solve_with Crossbar.Solver.Convolution (mixed n)));
              Test.make
                ~name:(Printf.sprintf "algorithm2 N=%d" n)
                (Staged.stage (solve_with Crossbar.Solver.Mean_value (mixed n)));
            ])
          [ 16; 64; 128 ])
  in
  let multistage =
    (* Cost of the multi-stage extension's fixed points (analysis only;
       the simulator referee is exercised in the reproduction section). *)
    let topology = Crossbar_network.Topology.create ~ports:256 ~fanout:4 in
    Test.make_grouped ~name:"multistage"
      [
        Test.make ~name:"link fixed point N=256"
          (Staged.stage (fun () ->
               ignore
                 (Crossbar_network.Analysis.link_fixed_point topology
                    ~offered:0.2 ~service_rate:1.)));
        Test.make ~name:"switch markov N=256"
          (Staged.stage (fun () ->
               ignore
                 (Crossbar_network.Analysis.switch_markov topology
                    ~offered:0.2 ~service_rate:1.)));
      ]
  in
  Test.make_grouped ~name:"crossbar" [ reproduction; algorithms; multistage ]

(* Runs the Bechamel suite; returns (name, nanoseconds-per-run) rows. *)
let benchmark () =
  line "Bechamel timings (monotonic clock, OLS fit)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-40s %s\n" "benchmark" "time per run";
  List.filter_map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ nanoseconds ] ->
          let pretty =
            let second = 1e9 and millisecond = 1e6 and microsecond = 1e3 in
            if nanoseconds > second then
              Printf.sprintf "%.3f s" (nanoseconds /. second)
            else if nanoseconds > millisecond then
              Printf.sprintf "%.3f ms" (nanoseconds /. millisecond)
            else if nanoseconds > microsecond then
              Printf.sprintf "%.3f us" (nanoseconds /. microsecond)
            else Printf.sprintf "%.0f ns" nanoseconds
          in
          Printf.printf "%-40s %s\n" name pretty;
          Some (name, nanoseconds)
      | _ ->
          Printf.printf "%-40s (no estimate)\n" name;
          None)
    rows

(* ---------- JSON perf snapshot ---------- *)

let snapshot ~fast ~telemetry ~timings =
  let solves = Engine.Telemetry.solves telemetry in
  let cache_hits =
    List.length (List.filter (fun s -> s.Engine.Telemetry.from_cache) solves)
  in
  let cache_misses = List.length solves - cache_hits in
  let hit_rate =
    if solves = [] then 0.
    else float_of_int cache_hits /. float_of_int (List.length solves)
  in
  Json.Assoc
    [
      ("schema", Json.String "crossbar-bench/1");
      ("generated_at_epoch_seconds", Json.Float (Unix.time ()));
      ("mode", Json.String (if fast then "fast" else "full"));
      ("domains", Json.Int (Engine.Pool.recommended_domains ()));
      ( "cache",
        Json.Assoc
          [
            ("hits", Json.Int cache_hits);
            ("misses", Json.Int cache_misses);
            ("hit_rate", Json.Float hit_rate);
          ] );
      ("telemetry", Engine.Telemetry.to_json telemetry);
      ( "timings",
        Json.List
          (List.map
             (fun (name, nanoseconds) ->
               Json.Assoc
                 [
                   ("name", Json.String name);
                   ("nanoseconds_per_run", Json.Float nanoseconds);
                 ])
             timings) );
    ]

(* Re-read and re-parse the snapshot we just wrote; a malformed or
   structurally incomplete file is a hard error, not a warning. *)
let validate_snapshot path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string text with
  | Error message ->
      Printf.eprintf "FATAL: %s is not valid JSON: %s\n" path message;
      exit 1
  | Ok json ->
      let required = [ "schema"; "mode"; "domains"; "cache"; "telemetry" ] in
      List.iter
        (fun field ->
          if Json.member field json = None then begin
            Printf.eprintf "FATAL: %s is missing field %S\n" path field;
            exit 1
          end)
        required;
      (match Json.member "schema" json with
      | Some (Json.String "crossbar-bench/1") -> ()
      | _ ->
          Printf.eprintf "FATAL: %s has an unexpected schema tag\n" path;
          exit 1);
      json

let write_snapshot path json =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Json.pp json)

(* ---------- driver ---------- *)

let parse_json_path argv =
  let n = Array.length argv in
  let rec scan i =
    if i >= n then None
    else if String.equal argv.(i) "--json" then
      if i + 1 < n then Some argv.(i + 1)
      else begin
        prerr_endline "FATAL: --json requires a path argument";
        exit 1
      end
    else scan (i + 1)
  in
  scan 1

let () =
  let fast = Array.exists (String.equal "--fast") Sys.argv in
  let json_path = parse_json_path Sys.argv in
  let telemetry = Engine.Telemetry.create () in
  reproduce ~telemetry ();
  let timings = if fast then [] else benchmark () in
  match json_path with
  | None -> ()
  | Some path ->
      write_snapshot path (snapshot ~fast ~telemetry ~timings);
      let json = validate_snapshot path in
      let solve_count =
        match Json.member "telemetry" json with
        | Some telemetry_json -> (
            match Json.member "solves" telemetry_json with
            | Some (Json.Int n) -> n
            | _ -> 0)
        | None -> 0
      in
      Printf.printf "\nwrote %s (%d engine solve(s), validated)\n" path
        solve_count
