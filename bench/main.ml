(* Benchmark and reproduction harness.

   Part 1 prints, for every table AND figure in the paper's evaluation,
   the series/rows this implementation produces (side by side with the
   published numbers where the paper prints them).  The figure and
   Table 2 sweeps run through the parallel sweep engine
   (Crossbar_engine), which also collects per-solve telemetry.

   Part 2 measures the sweep engine's incremental convolution path
   against the full-solve path on single-class load sweeps (the paper's
   Figures 2-5 regime) at R in {2, 4, 8} classes, plus simulator
   replication throughput across domains.  Full and incremental solves
   are required to agree within 1 ulp on every measure — any wider gap
   is a hard failure (exit 1), which CI relies on.

   Part 3 times the computational contributions with Bechamel: one
   Test.make per paper table/figure (the cost of regenerating it), plus an
   ablation of Algorithm 1 vs Algorithm 2 vs brute-force enumeration
   across switch sizes — the complexity claims of paper Section 5.

     dune exec bench/main.exe                         # everything
     dune exec bench/main.exe -- --fast               # skip Bechamel
     dune exec bench/main.exe -- --smoke --json b.json # CI: sweeps + gate only

   --json PATH writes a machine-readable perf snapshot (schema
   "crossbar-bench/1", documented in DESIGN.md) and re-parses the file
   before exiting, failing loudly if it is malformed. *)

open Bechamel
module Paper = Crossbar_workloads.Paper
module Report = Crossbar_workloads.Report
module Engine = Crossbar_engine
module Json = Crossbar_engine.Json
module Sim = Crossbar_sim.Simulator
module Measures = Crossbar.Measures
module Prob = Crossbar_numerics.Prob

let line title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---------- part 1: reproduction ---------- *)

let reproduce ?telemetry () =
  line "Reproduction of every figure and table (measured | paper)";
  Report.print_all ?telemetry Format.std_formatter;
  Format.print_flush ()

(* ---------- part 2: incremental sweep + replication benchmarks ---------- *)

(* Single-class load sweep at R classes: R-1 fixed background classes
   (mixed Poisson/Pascal, mixed bandwidths) and a swept Poisson class
   LAST, so the incremental path re-convolves exactly one factor and
   reuses the R-1 prefix products. *)
let sweep_model ~classes ~size load =
  let background =
    List.init (classes - 1) (fun i ->
        let name = Printf.sprintf "bg%d" i in
        if i mod 3 = 1 then
          Crossbar.Traffic.pascal ~name ~bandwidth:2 ~alpha:0.04 ~beta:0.01
            ~service_rate:1.0 ()
        else
          Crossbar.Traffic.poisson ~name
            ~bandwidth:((i mod 2) + 1)
            ~rate:0.06 ~service_rate:1.0 ())
  in
  let swept =
    Crossbar.Traffic.poisson ~name:"swept" ~bandwidth:1 ~rate:load
      ~service_rate:1.0 ()
  in
  Crossbar.Model.square ~size ~classes:(background @ [ swept ])

let sweep_points ~classes ~size ~count =
  List.init count (fun i ->
      let load = 0.05 +. (0.01 *. float_of_int i) in
      Engine.Sweep.point ~algorithm:Crossbar.Solver.Convolution
        ~label:(Printf.sprintf "R=%d load=%.2f" classes load)
        (sweep_model ~classes ~size load))

(* Wall time of one sweep over [points], best of [iters] runs with a
   fresh cache each time (a shared cache would turn every re-run into
   pure hits).  [~domains:1] pins both paths to one domain so the
   comparison isolates the solve algorithm, not pool scheduling. *)
let time_sweep ~incremental ~iters points =
  let best = ref Float.infinity in
  for _ = 1 to iters do
    let cache = Engine.Cache.create () in
    let started = Engine.Clock.now () in
    ignore
      (Engine.Sweep.run ~domains:1 ~cache ~incremental points
        : Engine.Sweep.outcome array);
    let elapsed = Engine.Clock.elapsed_since started in
    if elapsed < !best then best := elapsed
  done;
  !best

(* Largest ulp distance between the two outcome arrays across every
   reported measure and log G.  The incremental path is constructed to
   be bit-identical, so this should always come back 0; CI fails the
   job above 1. *)
let sweep_ulp_gap full inc =
  let worst = ref 0 in
  let note a b =
    let d = Prob.ulp_distance a b in
    if d > !worst then worst := d
  in
  Array.iter2
    (fun (a : Engine.Sweep.outcome) (b : Engine.Sweep.outcome) ->
      note a.Engine.Sweep.solution.Crossbar.Solver.log_normalization
        b.Engine.Sweep.solution.Crossbar.Solver.log_normalization;
      let ma = Engine.Sweep.measures a and mb = Engine.Sweep.measures b in
      note ma.Measures.busy_ports mb.Measures.busy_ports;
      note ma.Measures.input_utilization mb.Measures.input_utilization;
      note ma.Measures.output_utilization mb.Measures.output_utilization;
      Array.iter2
        (fun (ca : Measures.per_class) (cb : Measures.per_class) ->
          note ca.Measures.offered_load cb.Measures.offered_load;
          note ca.Measures.non_blocking cb.Measures.non_blocking;
          note ca.Measures.blocking cb.Measures.blocking;
          note ca.Measures.concurrency cb.Measures.concurrency;
          note ca.Measures.throughput cb.Measures.throughput)
        ma.Measures.per_class mb.Measures.per_class)
    full inc;
  !worst

let sweep_bench ~smoke ~telemetry ~classes =
  let size = 48 and count = 50 in
  let iters = if smoke then 3 else 10 in
  let points = sweep_points ~classes ~size ~count in
  let full =
    Engine.Sweep.run ~domains:1 ~cache:(Engine.Cache.create ()) ~telemetry
      points
  in
  let inc =
    Engine.Sweep.run ~domains:1
      ~cache:(Engine.Cache.create ())
      ~telemetry ~incremental:true points
  in
  let incremental_solves =
    Array.fold_left
      (fun acc o -> if o.Engine.Sweep.from_incremental then acc + 1 else acc)
      0 inc
  in
  let max_ulp = sweep_ulp_gap full inc in
  let full_seconds = time_sweep ~incremental:false ~iters points in
  let incremental_seconds = time_sweep ~incremental:true ~iters points in
  let speedup = full_seconds /. incremental_seconds in
  Printf.printf
    "R=%d size=%d points=%d  full %.5fs  incremental %.5fs  speedup %.2fx  \
     (%d/%d incremental solves, max ulp gap %d)\n"
    classes size count full_seconds incremental_seconds speedup
    incremental_solves count max_ulp;
  let json =
    Json.Assoc
      [
        ("classes", Json.Int classes);
        ("size", Json.Int size);
        ("points", Json.Int count);
        ("iterations", Json.Int iters);
        ("full_seconds", Json.Float full_seconds);
        ("incremental_seconds", Json.Float incremental_seconds);
        ("speedup", Json.Float speedup);
        ("incremental_solves", Json.Int incremental_solves);
        ("max_ulp", Json.Int max_ulp);
      ]
  in
  (json, max_ulp)

let sweep_benches ~smoke ~telemetry =
  line "Sweep engine: full vs incremental single-class load sweeps";
  let results =
    List.map (fun classes -> sweep_bench ~smoke ~telemetry ~classes) [ 2; 4; 8 ]
  in
  (Json.List (List.map fst results),
   List.fold_left (fun acc (_, ulp) -> max acc ulp) 0 results)

let replication_bench ~smoke =
  line "Simulator: replication throughput across domains";
  let model =
    Crossbar.Model.square ~size:6
      ~classes:
        [
          Crossbar.Traffic.poisson ~name:"p" ~bandwidth:1 ~rate:0.4
            ~service_rate:1.0 ();
          Crossbar.Traffic.pascal ~name:"q" ~bandwidth:2 ~alpha:0.1 ~beta:0.05
            ~service_rate:1.0 ();
        ]
  in
  let horizon = if smoke then 2e3 else 2e4 in
  let config =
    { (Sim.default_config model) with horizon; warmup = horizon /. 20.;
      batches = 5 }
  in
  let replications = 8 in
  let time domains =
    let started = Engine.Clock.now () in
    let result = Sim.run_replications ~domains ~replications config in
    (Engine.Clock.elapsed_since started, result)
  in
  let sequential_seconds, sequential = time 1 in
  let domains = Engine.Pool.recommended_domains () in
  let parallel_seconds, parallel = time domains in
  (* Domain-count independence is part of the CI gate: per-seed results
     must be bit-identical however the replications were scheduled. *)
  let max_ulp = ref 0 in
  let note (a : Sim.estimate array) (b : Sim.estimate array) =
    Array.iter2
      (fun (x : Sim.estimate) (y : Sim.estimate) ->
        let d =
          max
            (Prob.ulp_distance x.Sim.point y.Sim.point)
            (Prob.ulp_distance x.Sim.halfwidth y.Sim.halfwidth)
        in
        if d > !max_ulp then max_ulp := d)
      a b
  in
  note sequential.Sim.rep_time_congestion parallel.Sim.rep_time_congestion;
  note sequential.Sim.rep_call_congestion parallel.Sim.rep_call_congestion;
  note sequential.Sim.rep_concurrency parallel.Sim.rep_concurrency;
  let per_second seconds = float_of_int replications /. seconds in
  Printf.printf
    "%d replications, horizon %g: 1 domain %.3fs (%.1f rep/s), %d domains \
     %.3fs (%.1f rep/s), max ulp gap %d\n"
    replications horizon sequential_seconds
    (per_second sequential_seconds)
    domains parallel_seconds
    (per_second parallel_seconds)
    !max_ulp;
  let json =
    Json.Assoc
      [
        ("replications", Json.Int replications);
        ("horizon", Json.Float horizon);
        ("sequential_seconds", Json.Float sequential_seconds);
        ("parallel_seconds", Json.Float parallel_seconds);
        ("domains", Json.Int domains);
        ("sequential_reps_per_second", Json.Float (per_second sequential_seconds));
        ("parallel_reps_per_second", Json.Float (per_second parallel_seconds));
        ("max_ulp", Json.Int !max_ulp);
      ]
  in
  (json, !max_ulp)

(* ---------- part 2b: factor-tree benchmarks ---------- *)

(* R-class mixed model for the all-classes gradient: distinct loads per
   class and bandwidths cycling 1-3 so several distinct reduced switches
   exist for the per-class re-solve path to pay for. *)
let gradient_model ~classes ~size =
  let members =
    List.init classes (fun i ->
        let name = Printf.sprintf "g%d" i in
        if i mod 3 = 1 then
          Crossbar.Traffic.pascal ~name ~bandwidth:2 ~alpha:0.05 ~beta:0.01
            ~service_rate:1.0 ()
        else
          Crossbar.Traffic.poisson ~name
            ~bandwidth:((i mod 3) + 1)
            ~rate:(0.04 +. (0.01 *. float_of_int i))
            ~service_rate:1.0 ())
  in
  Crossbar.Model.square ~size ~classes:members

(* The historical path: one full solve for W(N) plus one reduced-switch
   solve per distinct bandwidth — up to R+1 independent solves
   (deduplicated by bandwidth here, which only narrows the measured
   gap in the tree path's favour being understated, never overstated). *)
let shadow_costs_by_resolve model ~weights =
  let total m =
    Measures.revenue
      (Crossbar.Solver.solve ~algorithm:Crossbar.Solver.Convolution m)
      ~weights
  in
  let w0 = total model in
  let memo = Hashtbl.create 4 in
  Array.init (Crossbar.Model.num_classes model) (fun r ->
      let a = Crossbar.Model.bandwidth model r in
      if
        Crossbar.Model.inputs model - a < 1
        || Crossbar.Model.outputs model - a < 1
      then w0
      else
        let reduced =
          match Hashtbl.find_opt memo a with
          | Some v -> v
          | None ->
              let v = total (Crossbar.Revenue.reduced_model model ~ports:a) in
              Hashtbl.add memo a v;
              v
        in
        w0 -. reduced)

let time_best ~iters f =
  let best = ref Float.infinity in
  for _ = 1 to iters do
    let started = Engine.Clock.now () in
    ignore (f () : float array);
    let elapsed = Engine.Clock.elapsed_since started in
    if elapsed < !best then best := elapsed
  done;
  !best

(* All-classes revenue gradient: R+1 independent solves versus one
   factor-tree solve whose diagonal already holds every reduced switch
   (Revenue.shadow_costs).  The two paths compute the same quantity
   through different roundings, so they are compared with a relative
   tolerance, not ulp. *)
let gradient_bench ~smoke ~classes =
  let size = 32 in
  (* Individual runs are tens of microseconds; a generous best-of count
     costs nothing and keeps the speedup ratio stable on noisy CI
     runners (the 2x acceptance floor is gated in smoke mode).  The
     smoke count must match the one BENCH_baseline.json was recorded
     with: best-of-N is biased downward in N, so measuring with more
     draws than the baseline systematically undershoots it. *)
  let iters = if smoke then 15 else 30 in
  let model = gradient_model ~classes ~size in
  let weights = Array.init classes (fun r -> 1.0 /. float_of_int (r + 1)) in
  let resolve = shadow_costs_by_resolve model ~weights in
  let tree = Crossbar.Revenue.shadow_costs model ~weights in
  let max_gap = ref 0. in
  Array.iteri
    (fun r d ->
      let gap = Float.abs (d -. tree.(r)) in
      if gap > !max_gap then max_gap := gap)
    resolve;
  let scale =
    Array.fold_left (fun acc d -> Float.max acc (Float.abs d)) 1. resolve
  in
  let rel_gap = !max_gap /. scale in
  let resolve_seconds =
    time_best ~iters (fun () -> shadow_costs_by_resolve model ~weights)
  in
  let tree_seconds =
    time_best ~iters (fun () -> Crossbar.Revenue.shadow_costs model ~weights)
  in
  let speedup = resolve_seconds /. tree_seconds in
  Printf.printf
    "R=%d size=%d  re-solve %.5fs  factor-tree %.5fs  speedup %.2fx  (max \
     rel gap %.3g)\n"
    classes size resolve_seconds tree_seconds speedup rel_gap;
  let json =
    Json.Assoc
      [
        ("classes", Json.Int classes);
        ("size", Json.Int size);
        ("iterations", Json.Int iters);
        ("resolve_seconds", Json.Float resolve_seconds);
        ("tree_seconds", Json.Float tree_seconds);
        ("speedup", Json.Float speedup);
        ("max_rel_gap", Json.Float rel_gap);
      ]
  in
  (json, speedup, rel_gap)

(* Multi-class delta sweep: classes 0 and 1 move jointly at every point,
   which the pre-tree chains (consecutive single-class deltas only)
   could not chain at all; the factor tree recombines the two changed
   leaves' shared root path. *)
let multi_delta_model ~classes ~size load =
  let members =
    List.init classes (fun i ->
        let name = Printf.sprintf "md%d" i in
        if i = 0 then
          Crossbar.Traffic.poisson ~name ~bandwidth:1 ~rate:load
            ~service_rate:1.0 ()
        else if i = 1 then
          Crossbar.Traffic.poisson ~name ~bandwidth:2 ~rate:(0.8 *. load)
            ~service_rate:1.0 ()
        else if i mod 3 = 1 then
          Crossbar.Traffic.pascal ~name ~bandwidth:2 ~alpha:0.04 ~beta:0.01
            ~service_rate:1.0 ()
        else
          Crossbar.Traffic.poisson ~name
            ~bandwidth:((i mod 2) + 1)
            ~rate:0.06 ~service_rate:1.0 ())
  in
  Crossbar.Model.square ~size ~classes:members

let multi_delta_points ~classes ~size ~count =
  List.init count (fun i ->
      let load = 0.05 +. (0.01 *. float_of_int i) in
      Engine.Sweep.point ~algorithm:Crossbar.Solver.Convolution
        ~label:(Printf.sprintf "R=%d multi load=%.2f" classes load)
        (multi_delta_model ~classes ~size load))

let multi_delta_bench ~smoke ~telemetry ~classes =
  let size = 48 and count = 50 in
  let iters = if smoke then 3 else 10 in
  let points = multi_delta_points ~classes ~size ~count in
  let full =
    Engine.Sweep.run ~domains:1 ~cache:(Engine.Cache.create ()) ~telemetry
      points
  in
  let inc =
    Engine.Sweep.run ~domains:1
      ~cache:(Engine.Cache.create ())
      ~telemetry ~incremental:true points
  in
  let incremental_solves =
    Array.fold_left
      (fun acc o -> if o.Engine.Sweep.from_incremental then acc + 1 else acc)
      0 inc
  in
  let max_ulp = sweep_ulp_gap full inc in
  let full_seconds = time_sweep ~incremental:false ~iters points in
  let incremental_seconds = time_sweep ~incremental:true ~iters points in
  let speedup = full_seconds /. incremental_seconds in
  Printf.printf
    "R=%d size=%d points=%d  full %.5fs  incremental %.5fs  speedup %.2fx  \
     (%d/%d incremental solves, max ulp gap %d)\n"
    classes size count full_seconds incremental_seconds speedup
    incremental_solves count max_ulp;
  let json =
    Json.Assoc
      [
        ("classes", Json.Int classes);
        ("size", Json.Int size);
        ("points", Json.Int count);
        ("iterations", Json.Int iters);
        ("swept_classes", Json.List [ Json.Int 0; Json.Int 1 ]);
        ("full_seconds", Json.Float full_seconds);
        ("incremental_seconds", Json.Float incremental_seconds);
        ("speedup", Json.Float speedup);
        ("incremental_solves", Json.Int incremental_solves);
        ("max_ulp", Json.Int max_ulp);
      ]
  in
  (json, max_ulp)

let factor_tree_benches ~smoke ~telemetry =
  line "Factor tree: all-classes revenue gradient vs per-class re-solve";
  let gradients = List.map (fun classes -> gradient_bench ~smoke ~classes) [ 2; 4; 8 ] in
  line "Factor tree: multi-class delta sweeps (classes 0 and 1 jointly)";
  let deltas =
    List.map
      (fun classes -> multi_delta_bench ~smoke ~telemetry ~classes)
      [ 2; 4; 8 ]
  in
  let json =
    Json.Assoc
      [
        ("gradient", Json.List (List.map (fun (j, _, _) -> j) gradients));
        ("multi_delta", Json.List (List.map fst deltas));
      ]
  in
  let worst_ulp = List.fold_left (fun acc (_, ulp) -> max acc ulp) 0 deltas in
  let worst_rel_gap =
    List.fold_left (fun acc (_, _, gap) -> Float.max acc gap) 0. gradients
  in
  let gradient8_speedup =
    List.fold_left2
      (fun acc classes (_, speedup, _) -> if classes = 8 then speedup else acc)
      0. [ 2; 4; 8 ] gradients
  in
  (json, worst_ulp, worst_rel_gap, gradient8_speedup)

(* ---------- part 2c: serve daemon benchmarks ---------- *)

module Protocol = Crossbar_serve.Protocol
module Batcher = Crossbar_serve.Batcher
module Registry = Crossbar_serve.Registry
module Server = Crossbar_serve.Server

(* A serve workload against one hot tree: an initial solve, then
   [rounds] cycles of delta / blocking / shadow_costs / admit — the
   mixed query stream of an admission controller tracking a drifting
   load.  Returns the request array, per request the model state the
   stateless baseline must re-solve at that point, and the revenue
   weights. *)
let serve_workload ~classes ~size ~rounds =
  let model0 = multi_delta_model ~classes ~size 0.05 in
  let weights = Array.init classes (fun r -> 1.0 /. float_of_int (r + 1)) in
  let requests = ref [] and states = ref [] and current = ref model0 in
  let next_id = ref 0 in
  let push query =
    requests := { Protocol.id = Json.Int !next_id; query } :: !requests;
    states := !current :: !states;
    incr next_id
  in
  push (Protocol.Solve { tree = "bench"; model = model0 });
  for i = 1 to rounds do
    let alpha = 0.05 +. (0.002 *. float_of_int i) in
    current :=
      Crossbar.Model.map_class !current 0 (fun traffic ->
          Crossbar.Traffic.with_alpha traffic alpha);
    push
      (Protocol.Delta
         {
           tree = "bench";
           changes =
             [ { Protocol.class_index = 0; alpha = Some alpha; beta = None } ];
         });
    push (Protocol.Blocking { tree = "bench" });
    push (Protocol.Shadow_costs { tree = "bench"; weights });
    push
      (Protocol.Admit { tree = "bench"; class_index = i mod classes; weights })
  done;
  ( Array.of_list (List.rev !requests),
    Array.of_list (List.rev !states),
    weights )

(* The stateless baseline: no resident tree, so every query pays a full
   factor-tree solve of its model state before the read.  (Shadow-cost
   queries skip the extra revenue fold the daemon also does, which only
   understates the daemon's advantage.) *)
let serve_resolve_all ~requests ~states ~weights =
  Array.iteri
    (fun i (request : Protocol.request) ->
      let model = states.(i) in
      let solved = Crossbar.Convolution.solve model in
      match request.Protocol.query with
      | Protocol.Solve _ | Protocol.Delta _ | Protocol.Blocking _ ->
          ignore (Crossbar.Convolution.measures solved : Measures.t)
      | Protocol.Shadow_costs _ | Protocol.Admit _ ->
          ignore
            (Crossbar.Revenue.shadow_costs ~solved model ~weights
              : float array)
      | Protocol.Stats | Protocol.Shutdown -> ())
    requests

let time_serve ~iters f =
  let best = ref Float.infinity in
  for _ = 1 to iters do
    let started = Engine.Clock.now () in
    f ();
    let elapsed = Engine.Clock.elapsed_since started in
    if elapsed < !best then best := elapsed
  done;
  !best

(* Every Float leaf of a response, in serialization order; two responses
   built by the same code path pair up positionally. *)
let rec float_leaves acc = function
  | Json.Float f -> f :: acc
  | Json.Null | Json.Bool _ | Json.Int _ | Json.String _ -> acc
  | Json.List items -> List.fold_left float_leaves acc items
  | Json.Assoc fields ->
      List.fold_left (fun acc (_, value) -> float_leaves acc value) acc fields

let response_ulp_gap a b =
  let xs = List.rev (float_leaves [] a) in
  let ys = List.rev (float_leaves [] b) in
  if List.length xs <> List.length ys then max_int
  else
    List.fold_left2 (fun acc x y -> max acc (Prob.ulp_distance x y)) 0 xs ys

let serve_bench ~smoke ~classes =
  let size = 32 in
  let rounds = if smoke then 10 else 30 in
  let iters = if smoke then 5 else 10 in
  let requests, states, weights = serve_workload ~classes ~size ~rounds in
  let n = Array.length requests in
  (* One instrumented batched run: its telemetry feeds the reported
     per-query latency percentiles. *)
  let telemetry = Engine.Telemetry.create () in
  let registry = Registry.create () in
  let outcome = Batcher.execute ~domains:1 ~registry ~telemetry requests in
  (* Batching equivalence: replaying the same stream one request at a
     time through a fresh registry must produce byte-identical response
     lines (stricter than the 1-ulp gate). *)
  let replay_registry = Registry.create () in
  let replay_telemetry = Engine.Telemetry.create () in
  let replay_ok = ref true in
  Array.iteri
    (fun i request ->
      let single =
        Batcher.execute ~domains:1 ~registry:replay_registry
          ~telemetry:replay_telemetry [| request |]
      in
      if
        not
          (String.equal
             (Json.to_string outcome.Batcher.responses.(i))
             (Json.to_string single.Batcher.responses.(0)))
      then replay_ok := false)
    requests;
  (* Hot-tree answers vs fresh solves: every solve/delta response must
     match a from-scratch solve of the same model state within 1 ulp. *)
  let max_ulp = ref 0 in
  Array.iteri
    (fun i (request : Protocol.request) ->
      match request.Protocol.query with
      | Protocol.Solve _ | Protocol.Delta _ ->
          let fresh =
            Batcher.execute ~domains:1 ~registry:(Registry.create ())
              ~telemetry:(Engine.Telemetry.create ())
              [|
                {
                  Protocol.id = request.Protocol.id;
                  query = Protocol.Solve { tree = "bench"; model = states.(i) };
                };
              |]
          in
          let pick name json =
            match Json.member name json with Some v -> v | None -> Json.Null
          in
          let gap response reference =
            max
              (response_ulp_gap (pick "log_g" response)
                 (pick "log_g" reference))
              (response_ulp_gap (pick "measures" response)
                 (pick "measures" reference))
          in
          let d =
            gap outcome.Batcher.responses.(i) fresh.Batcher.responses.(0)
          in
          if d > !max_ulp then max_ulp := d
      | _ -> ())
    requests;
  let resolve_seconds =
    time_serve ~iters (fun () -> serve_resolve_all ~requests ~states ~weights)
  in
  let batched_seconds =
    time_serve ~iters (fun () ->
        ignore
          (Batcher.execute ~domains:1 ~registry:(Registry.create ())
             ~telemetry:(Engine.Telemetry.create ())
             requests
            : Batcher.outcome))
  in
  let speedup = resolve_seconds /. batched_seconds in
  let qps = float_of_int n /. batched_seconds in
  let p50, p95, _ = Engine.Telemetry.wall_percentiles telemetry in
  Printf.printf
    "R=%d size=%d requests=%d  re-solve %.5fs  batched %.5fs  speedup %.2fx  \
     (%.0f q/s, p50 %.2gus p95 %.2gus, max ulp gap %d%s)\n"
    classes size n resolve_seconds batched_seconds speedup qps (p50 *. 1e6)
    (p95 *. 1e6) !max_ulp
    (if !replay_ok then "" else ", REPLAY MISMATCH");
  let json =
    Json.Assoc
      [
        ("classes", Json.Int classes);
        ("size", Json.Int size);
        ("requests", Json.Int n);
        ("iterations", Json.Int iters);
        ("resolve_seconds", Json.Float resolve_seconds);
        ("batched_seconds", Json.Float batched_seconds);
        ("speedup", Json.Float speedup);
        ("queries_per_second", Json.Float qps);
        ("wall_seconds_p50", Json.Float p50);
        ("wall_seconds_p95", Json.Float p95);
        ("max_ulp", Json.Int !max_ulp);
        ("replay_identical", Json.Bool !replay_ok);
      ]
  in
  (json, !max_ulp, !replay_ok, speedup)

(* ---------- pipelined daemon conversation ---------- *)

(* One Solve per request against a distinct tree, so every line pays a
   full model parse on the select loop and a full factor-tree solve in
   the batcher: both sides of the pipeline overlap carry real work. *)
let pipeline_workload ~classes ~size ~count =
  String.concat ""
    (List.init count (fun i ->
         let load = 0.05 +. (0.005 *. float_of_int i) in
         let model = multi_delta_model ~classes ~size load in
         Protocol.request_to_line
           {
             Protocol.id = Json.Int i;
             query =
               Protocol.Solve { tree = Printf.sprintf "p%d" i; model };
           }
         ^ "\n"))

(* Drives one full daemon conversation off pre-written files: the
   request stream is written to [input_path] before the timed window;
   the daemon reads it at full speed and appends responses to
   [output_path].  The server runs on a freshly spawned domain in both
   modes — so sequential and pipelined solves both start from cold
   per-domain arenas (running one mode on the persistent bench domain
   would hand it warmed free lists the other never sees) — while the
   calling domain blocks in [Domain.join], consuming no CPU.  No pump
   domain exists during the measurement, so pipelined serving uses
   exactly two busy domains (select loop + batch worker) — on a
   two-core runner that is the regime where overlap can win at all,
   and wall time covers exactly what pipelining attacks: the loop
   reads, parses and writes responses while the worker solves.  EOF on
   the input drains and shuts the loop down. *)
let run_daemon_conversation ~pipelined ~input_path ~output_path =
  let config =
    (* One batcher domain on a small runner.  A bounded batch keeps
       several batches in the conversation so the overlap recurs; the
       bounded registry keeps eviction recycling in the measured
       path. *)
    {
      Server.default_config with
      domains = Some 1;
      batch_limit = 32;
      capacity = Some 8;
      pipelined;
    }
  in
  let input = Unix.openfile input_path [ Unix.O_RDONLY ] 0 in
  let output =
    Unix.openfile output_path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o600
  in
  let server =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Unix.close input;
            Unix.close output)
          (fun () -> Server.run ~config ~input ~output ()))
  in
  Domain.join server

(* Response-line count of a finished conversation — read back outside
   the timed window. *)
let count_lines path =
  let ic = open_in_bin path in
  let seen = ref 0 in
  (try
     while true do
       ignore (input_line ic : string);
       incr seen
     done
   with End_of_file -> ());
  close_in_noerr ic;
  !seen

let serve_pipeline_row ~smoke ~classes =
  (* Sized so the select loop's share (parse + serialize + file I/O)
     and the worker's share (fresh solves) are comparable — the regime
     pipelining targets: at size 24 a solve is cheap enough that the
     loop's JSON work is a sizable fraction of each batch, and the long
     request stream amortizes the daemon's startup (including the
     pipeline worker's own spawn).  Larger sizes drown the loop's share
     in solve time and the measured overlap collapses toward 1x. *)
  let size = 24 in
  let count = if smoke then 256 else 384 in
  let iters = if smoke then 10 else 14 in
  let payload = pipeline_workload ~classes ~size ~count in
  (* The request stream is identical every conversation: write it once,
     outside every timed window. *)
  let input_path = Filename.temp_file "bench_pipeline_in" ".jsonl" in
  let output_path = Filename.temp_file "bench_pipeline_out" ".jsonl" in
  let oc = open_out_bin input_path in
  output_string oc payload;
  close_out oc;
  let answered = ref 0 in
  let run pipelined () =
    run_daemon_conversation ~pipelined ~input_path ~output_path
  in
  (* Minor collections stop every domain, and with two busy domains the
     rendezvous is what limits the overlap — stretch the minor heap for
     the duration of the row (both modes, so the ratio stays fair) to
     keep the stop-the-world cadence off the measured windows. *)
  let gc_before = Gc.get () in
  Gc.set { gc_before with Gc.minor_heap_size = 1 lsl 20 };
  (* Each iteration runs the two modes back to back, so the pair
     shares whatever load the runner is under at that moment and the
     ratio cancels the common mode.  The gated speedup is the *median*
     of those adjacent-pair ratios — a central estimator a scheduler
     hiccup during any single conversation barely moves, unlike a max
     over best-case ratios which only ever inflates: a true regression
     (pipelining no longer overlapping) drags the median down with it,
     while a one-sided outlier in either mode is absorbed. *)
  let sequential_samples = ref [] in
  let pipelined_samples = ref [] in
  let pair_ratios = ref [] in
  for _ = 1 to iters do
    let note samples f =
      (* Settle the heap first so one mode's garbage never bills the
         other's timed window. *)
      Gc.full_major ();
      let started = Engine.Clock.now () in
      f ();
      let elapsed = Engine.Clock.elapsed_since started in
      samples := elapsed :: !samples;
      elapsed
    in
    let sequential_sample = note sequential_samples (run false) in
    let pipelined_sample = note pipelined_samples (run true) in
    pair_ratios := (sequential_sample /. pipelined_sample) :: !pair_ratios;
    (* Read back outside the timed windows. *)
    answered := count_lines output_path
  done;
  Gc.set gc_before;
  Sys.remove input_path;
  Sys.remove output_path;
  let median samples =
    (* lint: disable=R7 — total order for sorting, not a tolerance test *)
    let sorted = List.sort Float.compare samples in
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    if n mod 2 = 1 then nth (n / 2)
    else 0.5 *. (nth ((n / 2) - 1) +. nth (n / 2))
  in
  let sequential_seconds = median !sequential_samples in
  let pipelined_seconds = median !pipelined_samples in
  let speedup = median !pair_ratios in
  let qps = float_of_int count /. pipelined_seconds in
  Printf.printf
    "R=%d size=%d requests=%d  sequential %.5fs  pipelined %.5fs  speedup \
     %.2fx  (%.0f q/s)\n"
    classes size count sequential_seconds pipelined_seconds speedup qps;
  let json =
    Json.Assoc
      [
        ("classes", Json.Int classes);
        ("size", Json.Int size);
        ("requests", Json.Int count);
        ("iterations", Json.Int iters);
        ("answered", Json.Int !answered);
        ("sequential_seconds", Json.Float sequential_seconds);
        ("pipelined_seconds", Json.Float pipelined_seconds);
        ("speedup", Json.Float speedup);
        ("queries_per_second", Json.Float qps);
      ]
  in
  (json, speedup)

let serve_benches ~smoke =
  line "Serve daemon: batched hot-tree serving vs per-query re-solve";
  let results =
    List.map (fun classes -> serve_bench ~smoke ~classes) [ 2; 4; 8 ]
  in
  line "Serve daemon: pipelined vs sequential batch execution";
  let pipeline_rows =
    List.map (fun classes -> serve_pipeline_row ~smoke ~classes) [ 8 ]
  in
  let json =
    Json.Assoc
      [
        ("load", Json.List (List.map (fun (j, _, _, _) -> j) results));
        ("pipeline", Json.List (List.map fst pipeline_rows));
      ]
  in
  let worst_ulp =
    List.fold_left (fun acc (_, ulp, _, _) -> max acc ulp) 0 results
  in
  let replay_ok = List.for_all (fun (_, _, ok, _) -> ok) results in
  let speedup8 =
    List.fold_left2
      (fun acc classes (_, _, _, speedup) ->
        if classes = 8 then speedup else acc)
      0. [ 2; 4; 8 ] results
  in
  let pipeline8 =
    List.fold_left (fun acc (_, speedup) -> Float.max acc speedup) 0.
      pipeline_rows
  in
  (json, worst_ulp, replay_ok, speedup8, pipeline8)

(* ---------- part 2d: combine kernel microbenchmarks ---------- *)

module Conv = Crossbar.Convolution
module Lattice = Crossbar.Lattice

(* Times the tiled Bigarray kernel directly against [combine_naive]
   (the pre-arena reference combine), sweeps the tile size, and
   measures the banded parallel dispatch against the same context
   pinned to one band.  Results go back to the calling domain's arena
   after every rep, so the steady state exercises the recycled
   zero-allocation path the R11 lint stage pins. *)

let kernel_operand ~cap seed =
  let l = Lattice.create ~capacity:cap () in
  for u = 0 to cap do
    let h = (((u + 1) * seed * 2654435761) lsr 7) land 0xffff in
    Lattice.set l u (0.05 +. (0.9 *. (float_of_int h /. 65536.)))
  done;
  l

let time_combine ~iters ~reps f =
  let best = ref Float.infinity in
  (* Settle the major heap first: the reference combine allocates a
     fresh profile per call, and letting its garbage collect inside a
     competitor's timed window would skew the ratio. *)
  Gc.full_major ();
  for _ = 1 to iters do
    let started = Engine.Clock.now () in
    for _ = 1 to reps do ignore (f () : Lattice.t) done;
    let elapsed = Engine.Clock.elapsed_since started in
    if elapsed < !best then best := elapsed
  done;
  !best /. float_of_int reps

(* Rep counts sized so each timed run covers a few tens of millions of
   kernel terms regardless of capacity. *)
let combine_reps ~smoke ~cap =
  let budget = if smoke then 40_000_000 else 120_000_000 in
  max 3 (budget / ((cap + 1) * (cap + 1)))

(* The row key [classes] lines up with the other sections' R for the
   baseline gate; the measured combine runs at capacity 32R, spanning
   the small root combines of an R=2 tree up to well past the default
   tile edge at R=8. *)
let combine_kernel_row ~smoke ~classes =
  let cap = 32 * classes in
  let ctx = Conv.context_of ~band_domains:1 ~inputs:cap ~outputs:cap () in
  let arena = Conv.arena ctx in
  let a = kernel_operand ~cap 3 and b = kernel_operand ~cap 5 in
  let iters = if smoke then 5 else 8 in
  let reps = combine_reps ~smoke ~cap in
  let naive_seconds =
    time_combine ~iters ~reps (fun () -> Conv.combine_naive ctx a b)
  in
  let tiled_seconds =
    time_combine ~iters ~reps (fun () ->
        let r = Conv.combine ctx a b in
        Conv.Arena.release arena r;
        r)
  in
  let speedup = naive_seconds /. tiled_seconds in
  Printf.printf
    "R=%d cap=%d  reference %.2fus  tiled %.2fus  speedup %.2fx\n" classes
    cap (1e6 *. naive_seconds) (1e6 *. tiled_seconds) speedup;
  let json =
    Json.Assoc
      [
        ("classes", Json.Int classes);
        ("capacity", Json.Int cap);
        ("iterations", Json.Int iters);
        ("reps", Json.Int reps);
        ("naive_seconds", Json.Float naive_seconds);
        ("tiled_seconds", Json.Float tiled_seconds);
        ("speedup", Json.Float speedup);
      ]
  in
  (json, speedup)

let tile_sweep_rows ~smoke =
  let cap = 256 in
  let a = kernel_operand ~cap 7 and b = kernel_operand ~cap 11 in
  let iters = if smoke then 3 else 6 in
  let reps = combine_reps ~smoke ~cap in
  Json.List
    (List.map
       (fun tile ->
         let ctx =
           Conv.context_of ~tile ~band_domains:1 ~inputs:cap ~outputs:cap ()
         in
         let arena = Conv.arena ctx in
         let seconds =
           time_combine ~iters ~reps (fun () ->
               let r = Conv.combine ctx a b in
               Conv.Arena.release arena r;
               r)
         in
         Printf.printf "tile=%-4d cap=%d  %.2fus per combine\n" tile cap
           (1e6 *. seconds);
         Json.Assoc
           [
             ("tile", Json.Int tile);
             ("capacity", Json.Int cap);
             ("seconds", Json.Float seconds);
           ])
       [ 16; 32; 64; 128 ])

(* Banded dispatch at a capacity well past the default threshold (R=8
   maps to 3072): a Domain.spawn round-trip costs milliseconds, so the
   bands need tens of milliseconds of kernel work each before the
   fan-out pays for itself on a busy 2-core runner.  The sequential
   reference is the same tiled kernel pinned to one band, so the ratio
   isolates the banding itself. *)
let parallel_kernel_row ~smoke ~classes =
  let cap = 384 * classes in
  let domains = Crossbar.Domains.recommended () in
  let banded_ctx =
    Conv.context_of ~combine_threshold:1 ~band_domains:domains ~inputs:cap
      ~outputs:cap ()
  in
  let sequential_ctx =
    Conv.context_of ~band_domains:1 ~inputs:cap ~outputs:cap ()
  in
  let a = kernel_operand ~cap 13 and b = kernel_operand ~cap 17 in
  let iters = if smoke then 3 else 5 in
  let reps = if smoke then 3 else 8 in
  let run ctx =
    let arena = Conv.arena ctx in
    time_combine ~iters ~reps (fun () ->
        let r = Conv.combine ctx a b in
        Conv.Arena.release arena r;
        r)
  in
  let sequential_seconds = run sequential_ctx in
  let banded_seconds = run banded_ctx in
  let speedup = sequential_seconds /. banded_seconds in
  Printf.printf
    "R=%d cap=%d domains=%d  sequential %.2fms  banded %.2fms  speedup \
     %.2fx\n"
    classes cap domains
    (1e3 *. sequential_seconds)
    (1e3 *. banded_seconds)
    speedup;
  let json =
    Json.Assoc
      [
        ("classes", Json.Int classes);
        ("capacity", Json.Int cap);
        ("domains", Json.Int domains);
        ("iterations", Json.Int iters);
        ("reps", Json.Int reps);
        ("sequential_seconds", Json.Float sequential_seconds);
        ("banded_seconds", Json.Float banded_seconds);
        ("speedup", Json.Float speedup);
      ]
  in
  (json, speedup)

(* Pure fan-out dispatch cost, no kernel work: a no-op job across
   [bands] through the persistent worker pool vs a fresh Domain.spawn
   per band (what combine_banded paid before the pool).  The job body
   is empty so the row isolates the dispatch round-trip that sets the
   banding threshold: cutting it from milliseconds to microseconds is
   what lets combines as small as the default threshold (256) fan out
   profitably — see DESIGN.md for the crossover arithmetic. *)
let band_latency_row ~smoke ~bands =
  let iters = if smoke then 200 else 500 in
  let time f =
    let best = ref Float.infinity in
    for _ = 1 to iters do
      let started = Engine.Clock.now () in
      f ();
      let elapsed = Engine.Clock.elapsed_since started in
      if elapsed < !best then best := elapsed
    done;
    !best
  in
  (* Warm the pool outside the timed window so the row measures
     steady-state dispatch, not the one-off worker startup. *)
  Crossbar.Band_pool.run ~bands (fun _ -> ());
  let pool_seconds =
    time (fun () -> Crossbar.Band_pool.run ~bands (fun _ -> ()))
  in
  let spawn_seconds =
    time (fun () ->
        (* The spawn path's shape mirrors the pool's: bands - 1 workers
           plus the caller's own band run inline. *)
        let workers =
          Array.init (bands - 1) (fun _ -> Domain.spawn (fun () -> ()))
        in
        Array.iter Domain.join workers)
  in
  let speedup = spawn_seconds /. pool_seconds in
  Printf.printf "bands=%d  spawn %.1fus  pool %.1fus  speedup %.1fx\n" bands
    (1e6 *. spawn_seconds) (1e6 *. pool_seconds) speedup;
  let json =
    Json.Assoc
      [
        ("bands", Json.Int bands);
        ("iterations", Json.Int iters);
        ("spawn_seconds", Json.Float spawn_seconds);
        ("pool_seconds", Json.Float pool_seconds);
        ("speedup", Json.Float speedup);
      ]
  in
  (json, speedup)

let kernel_benches ~smoke =
  line "Combine kernel: tiled Bigarray kernel vs reference combine";
  let combines =
    List.map (fun classes -> combine_kernel_row ~smoke ~classes) [ 2; 4; 8 ]
  in
  line "Combine kernel: tile-size sweep";
  let tile_sweep = tile_sweep_rows ~smoke in
  line "Combine kernel: banded parallel dispatch";
  let parallels =
    List.map (fun classes -> parallel_kernel_row ~smoke ~classes) [ 8 ]
  in
  line "Combine kernel: band dispatch latency (pool vs Domain.spawn)";
  let latencies =
    List.map (fun bands -> band_latency_row ~smoke ~bands) [ 2; 4 ]
  in
  let json =
    Json.Assoc
      [
        ("combine", Json.List (List.map fst combines));
        ("tile_sweep", tile_sweep);
        ("parallel", Json.List (List.map fst parallels));
        ("band_latency", Json.List (List.map fst latencies));
      ]
  in
  let at_8 rows =
    List.fold_left2
      (fun acc classes (_, speedup) -> if classes = 8 then speedup else acc)
      0. rows
  in
  let combine8 = at_8 [ 2; 4; 8 ] combines in
  let parallel8 = at_8 [ 8 ] parallels in
  let latency4 =
    List.fold_left2
      (fun acc bands (_, speedup) -> if bands = 4 then speedup else acc)
      0. [ 2; 4 ] latencies
  in
  (json, combine8, parallel8, latency4)

(* ---------- part 3: Bechamel timing ---------- *)

let whole_figure ?(sizes = Paper.sizes) series () =
  List.iter
    (fun s ->
      List.iter
        (fun n ->
          ignore (Crossbar.Solver.solve (s.Paper.model_of_size n)))
        sizes)
    series

let whole_table2 () =
  List.iter
    (fun set ->
      List.iter
        (fun n -> ignore (Crossbar.Solver.solve (Paper.table2_model set n)))
        Paper.table2_sizes)
    Paper.table2_sets

let solve_with algorithm model () =
  ignore (Crossbar.Solver.solve ~algorithm model)

let tests =
  let reproduction =
    Test.make_grouped ~name:"reproduce"
      [
        Test.make ~name:"figure1" (Staged.stage (whole_figure Paper.figure1));
        Test.make ~name:"figure2" (Staged.stage (whole_figure Paper.figure2));
        Test.make ~name:"figure3" (Staged.stage (whole_figure Paper.figure3));
        Test.make ~name:"figure4"
          (Staged.stage (whole_figure ~sizes:Paper.figure4_sizes Paper.figure4));
        Test.make ~name:"table2" (Staged.stage whole_table2);
      ]
  in
  let algorithms =
    (* The Section 5 ablation: both recurrences are O(N1 N2 R); the brute
       force is exponential and only feasible at toy sizes. *)
    let mixed n =
      Crossbar.Model.square ~size:n
        ~classes:
          [
            Crossbar.Traffic.poisson ~name:"p" ~bandwidth:1 ~rate:0.01
              ~service_rate:1.0 ();
            Crossbar.Traffic.pascal ~name:"q" ~bandwidth:2 ~alpha:0.01
              ~beta:0.004 ~service_rate:1.0 ();
          ]
    in
    Test.make_grouped ~name:"algorithms"
      ([
         Test.make ~name:"brute N=8"
           (Staged.stage (solve_with Crossbar.Solver.Brute_force (mixed 8)));
       ]
      @ List.concat_map
          (fun n ->
            [
              Test.make
                ~name:(Printf.sprintf "algorithm1 N=%d" n)
                (Staged.stage (solve_with Crossbar.Solver.Convolution (mixed n)));
              Test.make
                ~name:(Printf.sprintf "algorithm2 N=%d" n)
                (Staged.stage (solve_with Crossbar.Solver.Mean_value (mixed n)));
            ])
          [ 16; 64; 128 ])
  in
  let multistage =
    (* Cost of the multi-stage extension's fixed points (analysis only;
       the simulator referee is exercised in the reproduction section). *)
    let topology = Crossbar_network.Topology.create ~ports:256 ~fanout:4 in
    Test.make_grouped ~name:"multistage"
      [
        Test.make ~name:"link fixed point N=256"
          (Staged.stage (fun () ->
               ignore
                 (Crossbar_network.Analysis.link_fixed_point topology
                    ~offered:0.2 ~service_rate:1.)));
        Test.make ~name:"switch markov N=256"
          (Staged.stage (fun () ->
               ignore
                 (Crossbar_network.Analysis.switch_markov topology
                    ~offered:0.2 ~service_rate:1.)));
      ]
  in
  Test.make_grouped ~name:"crossbar" [ reproduction; algorithms; multistage ]

(* Runs the Bechamel suite; returns (name, nanoseconds-per-run) rows. *)
let benchmark () =
  line "Bechamel timings (monotonic clock, OLS fit)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-40s %s\n" "benchmark" "time per run";
  List.filter_map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ nanoseconds ] ->
          let pretty =
            let second = 1e9 and millisecond = 1e6 and microsecond = 1e3 in
            if nanoseconds > second then
              Printf.sprintf "%.3f s" (nanoseconds /. second)
            else if nanoseconds > millisecond then
              Printf.sprintf "%.3f ms" (nanoseconds /. millisecond)
            else if nanoseconds > microsecond then
              Printf.sprintf "%.3f us" (nanoseconds /. microsecond)
            else Printf.sprintf "%.0f ns" nanoseconds
          in
          Printf.printf "%-40s %s\n" name pretty;
          Some (name, nanoseconds)
      | _ ->
          Printf.printf "%-40s (no estimate)\n" name;
          None)
    rows

(* ---------- JSON perf snapshot ---------- *)

let snapshot ~mode ~telemetry ~sweeps ~factor_tree ~serve ~kernel
    ~replications ~timings =
  let solves = Engine.Telemetry.solves telemetry in
  let cache_hits =
    List.length (List.filter (fun s -> s.Engine.Telemetry.from_cache) solves)
  in
  let cache_misses = List.length solves - cache_hits in
  let hit_rate =
    if solves = [] then 0.
    else float_of_int cache_hits /. float_of_int (List.length solves)
  in
  Json.Assoc
    [
      ("schema", Json.String "crossbar-bench/1");
      ("generated_at_epoch_seconds", Json.Float (Unix.time ()));
      ("mode", Json.String mode);
      ("domains", Json.Int (Engine.Pool.recommended_domains ()));
      ("sweeps", sweeps);
      ("factor_tree", factor_tree);
      ("serve", serve);
      ("kernel", kernel);
      ("replications", replications);
      ( "cache",
        Json.Assoc
          [
            ("hits", Json.Int cache_hits);
            ("misses", Json.Int cache_misses);
            ("hit_rate", Json.Float hit_rate);
          ] );
      ("telemetry", Engine.Telemetry.to_json telemetry);
      ( "timings",
        Json.List
          (List.map
             (fun (name, nanoseconds) ->
               Json.Assoc
                 [
                   ("name", Json.String name);
                   ("nanoseconds_per_run", Json.Float nanoseconds);
                 ])
             timings) );
    ]

(* Re-read and re-parse the snapshot we just wrote; a malformed or
   structurally incomplete file is a hard error, not a warning. *)
let validate_snapshot path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string text with
  | Error message ->
      Printf.eprintf "FATAL: %s is not valid JSON: %s\n" path message;
      exit 1
  | Ok json ->
      let required =
        [
          "schema"; "mode"; "domains"; "cache"; "telemetry"; "sweeps";
          "factor_tree"; "serve"; "kernel"; "replications";
        ]
      in
      List.iter
        (fun field ->
          if Json.member field json = None then begin
            Printf.eprintf "FATAL: %s is missing field %S\n" path field;
            exit 1
          end)
        required;
      (match Json.member "schema" json with
      | Some (Json.String "crossbar-bench/1") -> ()
      | _ ->
          Printf.eprintf "FATAL: %s has an unexpected schema tag\n" path;
          exit 1);
      json

let write_snapshot path json =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Json.pp json)

(* ---------- driver ---------- *)

let parse_path_flag flag argv =
  let n = Array.length argv in
  let rec scan i =
    if i >= n then None
    else if String.equal argv.(i) flag then
      if i + 1 < n then Some argv.(i + 1)
      else begin
        Printf.eprintf "FATAL: %s requires a path argument\n" flag;
        exit 1
      end
    else scan (i + 1)
  in
  scan 1

let parse_json_path argv = parse_path_flag "--json" argv
let parse_baseline_path argv = parse_path_flag "--baseline" argv

(* ---------- baseline regression gate ---------- *)

(* Wall times are machine-dependent, so the committed baseline is
   compared on *speedup ratios* (dimensionless): the fresh run must keep
   at least 85% of the baseline's recorded speedup for every
   factor-tree, serve and kernel section, else the run fails (the CI
   regression gate). *)
let speedup_rows ~top ~key section json =
  match Json.member top json with
  | None -> []
  | Some ft -> (
      match Json.member section ft with
      | Some (Json.List rows) ->
          List.filter_map
            (fun row ->
              match (Json.member key row, Json.member "speedup" row) with
              | Some (Json.Int c), Some (Json.Float s) -> Some (c, s)
              | Some (Json.Int c), Some (Json.Int s) ->
                  Some (c, float_of_int s)
              | _ -> None)
            rows
      | _ -> [])

let compare_with_baseline ~fresh_factor_tree ~fresh_serve ~fresh_kernel path =
  let ic =
    try open_in_bin path
    with Sys_error message ->
      Printf.eprintf "FATAL: cannot read baseline %s: %s\n" path message;
      exit 1
  in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let baseline =
    match Json.of_string text with
    | Ok json -> json
    | Error message ->
        Printf.eprintf "FATAL: baseline %s is not valid JSON: %s\n" path
          message;
        exit 1
  in
  line (Printf.sprintf "Baseline comparison against %s" path);
  let fresh_wrapped =
    Json.Assoc
      [
        ("factor_tree", fresh_factor_tree);
        ("serve", fresh_serve);
        ("kernel", fresh_kernel);
      ]
  in
  let failures = ref 0 in
  List.iter
    (fun (top, section, key) ->
      let base_rows = speedup_rows ~top ~key section baseline in
      List.iter
        (fun (row_key, fresh_speedup) ->
          match List.assoc_opt row_key base_rows with
          | None ->
              Printf.printf "%s.%s %s=%d: %.2fx (no baseline entry)\n" top
                section key row_key fresh_speedup
          | Some base_speedup ->
              let floor = 0.85 *. base_speedup in
              let ok = fresh_speedup >= floor in
              Printf.printf
                "%s.%s %s=%d: %.2fx vs baseline %.2fx (floor %.2fx) %s\n" top
                section key row_key fresh_speedup base_speedup floor
                (if ok then "ok" else "REGRESSION");
              if not ok then incr failures)
        (speedup_rows ~top ~key section fresh_wrapped))
    [
      ("factor_tree", "gradient", "classes");
      ("factor_tree", "multi_delta", "classes");
      ("serve", "load", "classes");
      ("serve", "pipeline", "classes");
      ("kernel", "combine", "classes");
      ("kernel", "parallel", "classes");
      ("kernel", "band_latency", "bands");
    ];
  if !failures > 0 then begin
    Printf.eprintf
      "FATAL: %d speedup(s) regressed more than 15%% against %s\n" !failures
      path;
    exit 1
  end

(* Relative agreement required between the batched shadow costs and the
   per-class re-solve path (same quantity, different rounding). *)
let gradient_gap_limit = 1e-9

(* Acceptance floor on the R=8 batched-gradient speedup, gated in smoke
   mode where CI runs it. *)
let gradient8_speedup_floor = 2.0

(* Acceptance floor for the daemon: at R=8 serving the batch off hot
   trees must beat stateless per-query re-solving. *)
let serve8_speedup_floor = 1.0

(* Acceptance floors for the combine kernels, gated in smoke mode: the
   tiled Bigarray kernel must beat the reference combine by 1.5x at the
   R=8 scale, and banding a large combine across domains must never
   lose to running it sequentially. *)
let kernel_combine8_floor = 1.5
let kernel_parallel8_floor = 1.0

(* Acceptance floor on pure band dispatch: arming the persistent pool's
   mailboxes must beat spawning fresh domains by 5x at four bands, else
   the lowered combine threshold (256 by default) stops paying. *)
let kernel_band_latency_floor = 5.0

(* Acceptance floor for pipelined serving.  On an idle two-core host
   the adjacent-pair median sits around 1.15-1.2x, but the overlap
   needs a genuinely free second core: under external load the central
   estimate honestly degrades toward parity (observed as low as ~0.95x
   on a busy shared runner), and no robust statistic can clear 1.1x
   there without the upward bias this gate used to carry.  The hard
   floor therefore only catches catastrophic regressions — pipelining
   costing a double execution or serializing the batch twice — while
   the committed-baseline compare (0.85x of a min-of-5 recorded
   speedup) carries the finer regression duty. *)
let serve_pipeline_floor = 0.9

let () =
  let fast = Array.exists (String.equal "--fast") Sys.argv in
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  (* Developer loop for the kernel microbenchmarks alone (no snapshot,
     no gates): dune exec bench/main.exe -- --kernel-only [--smoke]. *)
  if Array.exists (String.equal "--kernel-only") Sys.argv then begin
    ignore (kernel_benches ~smoke : Json.t * float * float * float);
    exit 0
  end;
  (* Developer loop for the daemon pipelining row alone (no snapshot,
     no gates): dune exec bench/main.exe -- --pipeline-only [--smoke]. *)
  if Array.exists (String.equal "--pipeline-only") Sys.argv then begin
    ignore (serve_pipeline_row ~smoke ~classes:8 : Json.t * float);
    exit 0
  end;
  let json_path = parse_json_path Sys.argv in
  let baseline_path = parse_baseline_path Sys.argv in
  let mode = if smoke then "smoke" else if fast then "fast" else "full" in
  let telemetry = Engine.Telemetry.create () in
  if not smoke then reproduce ~telemetry ();
  let sweeps, sweep_ulp = sweep_benches ~smoke ~telemetry in
  let factor_tree, tree_ulp, gradient_gap, gradient8_speedup =
    factor_tree_benches ~smoke ~telemetry
  in
  let serve, serve_ulp, serve_replay_ok, serve8_speedup, serve_pipeline8 =
    serve_benches ~smoke
  in
  let kernel, kernel_combine8, kernel_parallel8, kernel_latency4 =
    kernel_benches ~smoke
  in
  let replications, replication_ulp = replication_bench ~smoke in
  let worst_ulp =
    max (max sweep_ulp tree_ulp) (max replication_ulp serve_ulp)
  in
  let timings = if fast || smoke then [] else benchmark () in
  (match json_path with
  | None -> ()
  | Some path ->
      write_snapshot path
        (snapshot ~mode ~telemetry ~sweeps ~factor_tree ~serve ~kernel
           ~replications ~timings);
      let json = validate_snapshot path in
      let solve_count =
        match Json.member "telemetry" json with
        | Some telemetry_json -> (
            match Json.member "solves" telemetry_json with
            | Some (Json.Int n) -> n
            | _ -> 0)
        | None -> 0
      in
      Printf.printf "\nwrote %s (%d engine solve(s), validated)\n" path
        solve_count);
  (match baseline_path with
  | None -> ()
  | Some path ->
      compare_with_baseline ~fresh_factor_tree:factor_tree ~fresh_serve:serve
        ~fresh_kernel:kernel path);
  (* The accuracy gate CI depends on: incremental solves and multi-domain
     replications must match their reference paths within 1 ulp. *)
  if worst_ulp > 1 then begin
    Printf.eprintf
      "FATAL: incremental/parallel results diverge from the reference path \
       by %d ulp (limit 1)\n"
      worst_ulp;
    exit 1
  end;
  if gradient_gap > gradient_gap_limit then begin
    Printf.eprintf
      "FATAL: batched shadow costs diverge from the per-class re-solve path \
       by %.3g relative (limit %.0e)\n"
      gradient_gap gradient_gap_limit;
    exit 1
  end;
  (* The acceptance floor for the batched gradient: at R=8 the single
     factor-tree solve must beat the R+1 re-solve path. *)
  if smoke && gradient8_speedup < gradient8_speedup_floor then begin
    Printf.eprintf
      "FATAL: factor-tree gradient speedup at R=8 is %.2fx (floor %.1fx)\n"
      gradient8_speedup gradient8_speedup_floor;
    exit 1
  end;
  (* Serve gates: batched responses must be byte-identical to the
     one-at-a-time replay, and at R=8 hot-tree serving must beat
     stateless per-query re-solving. *)
  if not serve_replay_ok then begin
    Printf.eprintf
      "FATAL: batched serve responses differ from the one-at-a-time replay\n";
    exit 1
  end;
  if smoke && serve8_speedup < serve8_speedup_floor then begin
    Printf.eprintf
      "FATAL: serve batching speedup at R=8 is %.2fx (floor %.1fx)\n"
      serve8_speedup serve8_speedup_floor;
    exit 1
  end;
  if smoke && serve_pipeline8 < serve_pipeline_floor then begin
    Printf.eprintf
      "FATAL: pipelined serve speedup at R=8 is %.2fx (floor %.2fx)\n"
      serve_pipeline8 serve_pipeline_floor;
    exit 1
  end;
  (* Kernel gates: the tiled kernel must hold its margin over the
     reference combine, and banding must never cost wall time. *)
  if smoke && kernel_combine8 < kernel_combine8_floor then begin
    Printf.eprintf
      "FATAL: tiled combine speedup at R=8 is %.2fx (floor %.1fx)\n"
      kernel_combine8 kernel_combine8_floor;
    exit 1
  end;
  if smoke && kernel_parallel8 < kernel_parallel8_floor then begin
    Printf.eprintf
      "FATAL: banded combine speedup at R=8 is %.2fx (floor %.1fx)\n"
      kernel_parallel8 kernel_parallel8_floor;
    exit 1
  end;
  if smoke && kernel_latency4 < kernel_band_latency_floor then begin
    Printf.eprintf
      "FATAL: band dispatch speedup over Domain.spawn at 4 bands is %.2fx \
       (floor %.1fx)\n"
      kernel_latency4 kernel_band_latency_floor;
    exit 1
  end
