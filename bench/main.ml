(* Benchmark and reproduction harness.

   Part 1 prints, for every table AND figure in the paper's evaluation,
   the series/rows this implementation produces (side by side with the
   published numbers where the paper prints them).

   Part 2 times the computational contributions with Bechamel: one
   Test.make per paper table/figure (the cost of regenerating it), plus an
   ablation of Algorithm 1 vs Algorithm 2 vs brute-force enumeration
   across switch sizes — the complexity claims of paper Section 5.

     dune exec bench/main.exe            # reproduction + timings
     dune exec bench/main.exe -- --fast  # reproduction only *)

open Bechamel
module Paper = Crossbar_workloads.Paper
module Report = Crossbar_workloads.Report

let line title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---------- part 1: reproduction ---------- *)

let reproduce () =
  line "Reproduction of every figure and table (measured | paper)";
  Report.print_all Format.std_formatter;
  Format.print_flush ()

(* ---------- part 2: Bechamel timing ---------- *)

let whole_figure ?(sizes = Paper.sizes) series () =
  List.iter
    (fun s ->
      List.iter
        (fun n ->
          ignore (Crossbar.Solver.solve (s.Paper.model_of_size n)))
        sizes)
    series

let whole_table2 () =
  List.iter
    (fun set ->
      List.iter
        (fun n -> ignore (Crossbar.Solver.solve (Paper.table2_model set n)))
        Paper.table2_sizes)
    Paper.table2_sets

let solve_with algorithm model () =
  ignore (Crossbar.Solver.solve ~algorithm model)

let tests =
  let reproduction =
    Test.make_grouped ~name:"reproduce"
      [
        Test.make ~name:"figure1" (Staged.stage (whole_figure Paper.figure1));
        Test.make ~name:"figure2" (Staged.stage (whole_figure Paper.figure2));
        Test.make ~name:"figure3" (Staged.stage (whole_figure Paper.figure3));
        Test.make ~name:"figure4"
          (Staged.stage (whole_figure ~sizes:Paper.figure4_sizes Paper.figure4));
        Test.make ~name:"table2" (Staged.stage whole_table2);
      ]
  in
  let algorithms =
    (* The Section 5 ablation: both recurrences are O(N1 N2 R); the brute
       force is exponential and only feasible at toy sizes. *)
    let mixed n =
      Crossbar.Model.square ~size:n
        ~classes:
          [
            Crossbar.Traffic.poisson ~name:"p" ~bandwidth:1 ~rate:0.01
              ~service_rate:1.0 ();
            Crossbar.Traffic.pascal ~name:"q" ~bandwidth:2 ~alpha:0.01
              ~beta:0.004 ~service_rate:1.0 ();
          ]
    in
    Test.make_grouped ~name:"algorithms"
      ([
         Test.make ~name:"brute N=8"
           (Staged.stage (solve_with Crossbar.Solver.Brute_force (mixed 8)));
       ]
      @ List.concat_map
          (fun n ->
            [
              Test.make
                ~name:(Printf.sprintf "algorithm1 N=%d" n)
                (Staged.stage (solve_with Crossbar.Solver.Convolution (mixed n)));
              Test.make
                ~name:(Printf.sprintf "algorithm2 N=%d" n)
                (Staged.stage (solve_with Crossbar.Solver.Mean_value (mixed n)));
            ])
          [ 16; 64; 128 ])
  in
  let multistage =
    (* Cost of the multi-stage extension's fixed points (analysis only;
       the simulator referee is exercised in the reproduction section). *)
    let topology = Crossbar_network.Topology.create ~ports:256 ~fanout:4 in
    Test.make_grouped ~name:"multistage"
      [
        Test.make ~name:"link fixed point N=256"
          (Staged.stage (fun () ->
               ignore
                 (Crossbar_network.Analysis.link_fixed_point topology
                    ~offered:0.2 ~service_rate:1.)));
        Test.make ~name:"switch markov N=256"
          (Staged.stage (fun () ->
               ignore
                 (Crossbar_network.Analysis.switch_markov topology
                    ~offered:0.2 ~service_rate:1.)));
      ]
  in
  Test.make_grouped ~name:"crossbar" [ reproduction; algorithms; multistage ]

let benchmark () =
  line "Bechamel timings (monotonic clock, OLS fit)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-40s %s\n" "benchmark" "time per run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ nanoseconds ] ->
          let pretty =
            if nanoseconds > 1e9 then Printf.sprintf "%.3f s" (nanoseconds /. 1e9)
            else if nanoseconds > 1e6 then
              Printf.sprintf "%.3f ms" (nanoseconds /. 1e6)
            else if nanoseconds > 1e3 then
              Printf.sprintf "%.3f us" (nanoseconds /. 1e3)
            else Printf.sprintf "%.0f ns" nanoseconds
          in
          Printf.printf "%-40s %s\n" name pretty
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    rows

let () =
  let fast = Array.exists (String.equal "--fast") Sys.argv in
  reproduce ();
  if not fast then benchmark ()
